package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"partfeas"
	"partfeas/internal/leakcheck"
)

// startSmokeServer binds an ephemeral port and serves in the background;
// the returned stop function drains gracefully and asserts the server
// exits with ErrServerClosed.
func startSmokeServer(t testing.TB, cfg Config) (*Server, string, func()) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv := New(cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("graceful shutdown: %v", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}
	return srv, "http://" + srv.Addr(), stop
}

// hardAnalyzeBody builds an /v1/analyze request whose exact adversary
// has a deliberately enormous search tree (30 near-symmetric tasks on 4
// machines, effectively unbounded node budget), so the request reliably
// outlives a client that hangs up after a few milliseconds.
func hardAnalyzeBody() string {
	var sb strings.Builder
	sb.WriteString(`{"tasks":[`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		period := int64(97 + 13*(i%7) + i)
		wcet := period*2/5 + int64(i%3)
		fmt.Fprintf(&sb, `{"name":"t%d","wcet":%d,"period":%d}`, i, wcet, period)
	}
	sb.WriteString(`],"speeds":[1,1,2,3],"exact_budget":1000000000000}`)
	return sb.String()
}

// scrapeMetric fetches /metrics and returns the value of the named
// sample (first token match).
func scrapeMetric(t testing.TB, client *http.Client, baseURL, name string) float64 {
	t.Helper()
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != name {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("metric %s: %v", name, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, raw)
	return 0
}

// TestServeSmoke is the servesmoke gate: a real listener, concurrent
// clients whose responses must be byte-identical to direct library
// calls, a mid-flight client hang-up, a /metrics scrape proving the
// tester cache is hitting, a graceful drain, and no goroutine leaks.
func TestServeSmoke(t *testing.T) {
	leakcheck.Check(t)
	_, baseURL, stop := startSmokeServer(t, Config{Logf: t.Logf})

	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()

	// Ground truth for every (instance, alpha) the clients will send.
	ins := demoInstances()
	alphas := []float64{1, 2}
	type query struct {
		body string
		want string
	}
	var queries []query
	for _, in := range ins {
		req := TestRequest{InstanceRequest: instanceRequestOf(in)}
		for _, alpha := range alphas {
			req.Alpha = alpha
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := partfeas.TestCtx(context.Background(), in, alpha)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(TestResponseFrom(rep)); err != nil {
				t.Fatal(err)
			}
			queries = append(queries, query{body: string(body), want: want.String()})
		}
	}

	// ≥8 concurrent clients, each cycling all queries several times so
	// repeat instances hit the tester cache.
	const clients = 8
	const rounds = 5
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for qi, q := range queries {
					resp, err := client.Post(baseURL+"/v1/test", "application/json", strings.NewReader(q.body))
					if err != nil {
						errc <- err
						return
					}
					got, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					if resp.StatusCode != 200 {
						errc <- fmt.Errorf("client %d query %d: status %d: %s", c, qi, resp.StatusCode, got)
						return
					}
					if string(got) != q.want {
						errc <- fmt.Errorf("client %d query %d: served %q != direct %q", c, qi, got, q.want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Mid-flight cancellation: a client hangs up a few ms into a huge
	// analyze; the server must record the abandonment and stay healthy.
	canceledOne := false
	for attempt := 0; attempt < 3 && !canceledOne; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(3*time.Millisecond, cancel)
		req, err := http.NewRequestWithContext(ctx, "POST", baseURL+"/v1/analyze", strings.NewReader(hardAnalyzeBody()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close() // finished before the hang-up; try again
		} else {
			canceledOne = true
		}
		timer.Stop()
		cancel()
	}
	if !canceledOne {
		t.Fatal("could not abandon an analyze mid-flight in 3 attempts")
	}
	deadline := time.Now().Add(5 * time.Second)
	for scrapeMetric(t, client, baseURL, "partfeas_http_requests_canceled_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("canceled request never counted in /metrics")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The repeated instances must have produced cache hits.
	if ratio := scrapeMetric(t, client, baseURL, "partfeas_tester_cache_hit_ratio"); !(ratio > 0) {
		t.Errorf("tester cache hit ratio = %v, want > 0", ratio)
	}
	if served := scrapeMetric(t, client, baseURL, "partfeas_http_request_duration_seconds_count"); served < clients*rounds*float64(len(queries)) {
		t.Errorf("served count %v below client request count", served)
	}

	// Graceful drain; leakcheck's cleanup then asserts zero leaks.
	client.CloseIdleConnections()
	stop()
}

// instanceRequestOf converts a library instance to its wire form.
func instanceRequestOf(in partfeas.Instance) InstanceRequest {
	req := InstanceRequest{Tasks: make([]TaskJSON, len(in.Tasks)), Machines: make([]MachineJSON, len(in.Platform))}
	for i, tk := range in.Tasks {
		req.Tasks[i] = TaskJSON{Name: tk.Name, WCET: tk.WCET, Period: tk.Period}
	}
	for i, m := range in.Platform {
		req.Machines[i] = MachineJSON{Name: m.Name, Speed: m.Speed}
	}
	if in.Scheduler == partfeas.RMS {
		req.Scheduler = "rms"
	} else {
		req.Scheduler = "edf"
	}
	return req
}

// BenchmarkServeTest measures end-to-end /v1/test throughput and latency
// over a real socket, reporting p50/p99 and request rate via
// ReportMetric (benchjson records them in results/BENCH_4.json).
func BenchmarkServeTest(b *testing.B) {
	_, baseURL, stop := startSmokeServer(b, Config{})
	defer stop()
	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}}
	defer client.CloseIdleConnections()

	body := []byte(`{"tasks":[{"name":"video","wcet":9,"period":30},{"name":"audio","wcet":1,"period":4},` +
		`{"name":"net","wcet":3,"period":10},{"name":"ui","wcet":2,"period":12},{"name":"sensor","wcet":1,"period":20}],` +
		`"speeds":[1,1,4]}`)

	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		for pb.Next() {
			start := time.Now()
			resp, err := client.Post(baseURL+"/v1/test", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			local = append(local, time.Since(start))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quant := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	b.ReportMetric(float64(quant(0.5))/float64(time.Microsecond), "p50-µs/op")
	b.ReportMetric(float64(quant(0.99))/float64(time.Microsecond), "p99-µs/op")
	b.ReportMetric(float64(len(lat))/b.Elapsed().Seconds(), "req/s")
}
