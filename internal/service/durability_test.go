package service

// Crash-recovery tests for the durability layer. The central assertion,
// used by every test here, is byte-identity of the serialized session
// store: two stores are "the same" exactly when encodeStore emits the
// same bytes (ids, task multisets, alphas, engine placements and all).
//
// The crash matrix drives a fixed mutation script against a durable
// server while one fault-injection plan is armed, simulates a process
// kill, recovers, and checks the recovered store equals a reference
// store that applied exactly the acknowledged ops — or the acknowledged
// ops plus the one faulted op, which is legal when the faulted record
// reached the file before its append reported failure (durable but
// unacknowledged; the client saw an error, so either outcome is
// consistent).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"partfeas"
	"partfeas/internal/faultinject"
	"partfeas/internal/online"
)

var errInjectedDisk = errors.New("injected disk failure")

func mustDurable(t testing.TB, dir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dir
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := NewDurable(cfg)
	if err != nil {
		t.Fatalf("NewDurable(%s): %v", dir, err)
	}
	// crash() is once-guarded, so this is a no-op for servers the test
	// body already closed or crashed; it only stops the snapshot
	// goroutine before the test's Logf becomes invalid.
	t.Cleanup(srv.Crash)
	return srv
}

func storeBytes(t testing.TB, srv *Server) []byte {
	t.Helper()
	b, err := srv.dur.encodeStore()
	if err != nil {
		t.Fatalf("encodeStore: %v", err)
	}
	return b
}

type scriptStep struct {
	name string
	run  func(srv *Server) error
}

// durabilityScript is a fixed mutation sequence covering every logged op
// type and both engine modes: implicit sorted and arrival sessions, a
// constrained-deadline session, singleton admits, best-effort and
// all-or-nothing batches, a force-committed infeasible set (batch-tester
// fallback), WCET updates, removals, an applied repartition, and a
// create+destroy pair. Step k appends WAL op k+1, which is what lets the
// crash matrix aim a fault at a specific op index.
func durabilityScript() []scriptStep {
	ctx := context.Background()
	instance := func(sched partfeas.Scheduler) partfeas.Instance {
		return partfeas.Instance{
			Tasks: partfeas.TaskSet{
				{Name: "video", WCET: 9, Period: 30},
				{Name: "audio", WCET: 1, Period: 4},
				{Name: "net", WCET: 3, Period: 10},
			},
			Platform:  partfeas.Platform{{Name: "m0", Speed: 1}, {Name: "m1", Speed: 1}, {Name: "m2", Speed: 4}},
			Scheduler: sched,
		}
	}
	withSession := func(id string, f func(s *session) error) func(*Server) error {
		return func(srv *Server) error {
			s, err := srv.sessions.get(id)
			if err != nil {
				return err
			}
			return f(s)
		}
	}
	return []scriptStep{
		{"create-s1-sorted-edf", func(srv *Server) error {
			_, err := srv.sessions.create(instance(partfeas.EDF), 1, online.FirstFitSorted(), "")
			return err
		}},
		{"create-s2-arrival-rms", func(srv *Server) error {
			_, err := srv.sessions.create(instance(partfeas.RMS), 2, online.FirstFitArrival(), "")
			return err
		}},
		{"create-s3-constrained", func(srv *Server) error {
			in := partfeas.Instance{
				Tasks:     partfeas.TaskSet{{Name: "ca", WCET: 1, Period: 4}, {Name: "cb", WCET: 2, Period: 10}},
				Platform:  partfeas.Platform{{Name: "c0", Speed: 1}, {Name: "c1", Speed: 1}},
				Scheduler: partfeas.EDF,
			}
			_, err := srv.sessions.createConstrained(in, []int64{3, 8}, 1, online.FirstFitSorted(), "")
			return err
		}},
		{"s1-admit", withSession("s-1", func(s *session) error {
			_, err := s.addTask(ctx, partfeas.Task{Name: "ui", WCET: 2, Period: 12}, 0, false)
			return err
		})},
		{"s2-admit", withSession("s-2", func(s *session) error {
			_, err := s.addTask(ctx, partfeas.Task{Name: "sensor", WCET: 1, Period: 20}, 0, false)
			return err
		})},
		{"s1-batch-best-effort", withSession("s-1", func(s *session) error {
			_, err := s.addTaskBatch(ctx,
				[]partfeas.Task{{Name: "x1", WCET: 1, Period: 5}, {Name: "x2", WCET: 40, Period: 50}, {Name: "x3", WCET: 1, Period: 7}},
				[]int64{0, 0, 0}, online.BestEffort)
			return err
		})},
		{"s2-batch-all-or-nothing", withSession("s-2", func(s *session) error {
			_, err := s.addTaskBatch(ctx,
				[]partfeas.Task{{Name: "y1", WCET: 1, Period: 9}, {Name: "y2", WCET: 1, Period: 11}},
				[]int64{0, 0}, online.AllOrNothing)
			return err
		})},
		{"create-s4", func(srv *Server) error {
			in := partfeas.Instance{
				Tasks:     partfeas.TaskSet{{Name: "solo", WCET: 1, Period: 3}},
				Platform:  partfeas.Platform{{Name: "q0", Speed: 1}},
				Scheduler: partfeas.EDF,
			}
			_, err := srv.sessions.create(in, 1, online.FirstFitSorted(), "")
			return err
		}},
		{"s4-force-infeasible", withSession("s-4", func(s *session) error {
			_, err := s.addTask(ctx, partfeas.Task{Name: "hog", WCET: 100, Period: 10}, 0, true)
			return err
		})},
		{"s4-wcet-recover", withSession("s-4", func(s *session) error {
			_, err := s.updateWCET(ctx, 1, 1, false)
			return err
		})},
		{"s1-remove", withSession("s-1", func(s *session) error {
			_, err := s.removeTask(ctx, 1)
			return err
		})},
		{"s3-admit-constrained", withSession("s-3", func(s *session) error {
			_, err := s.addTask(ctx, partfeas.Task{Name: "cc", WCET: 1, Period: 6}, 5, false)
			return err
		})},
		{"s2-repartition-apply", withSession("s-2", func(s *session) error {
			_, err := s.repartition(ctx, 0, true)
			return err
		})},
		{"s1-wcet", withSession("s-1", func(s *session) error {
			_, err := s.updateWCET(ctx, 0, 8, false)
			return err
		})},
		{"create-s5", func(srv *Server) error {
			_, err := srv.sessions.create(instance(partfeas.EDF), 1.5, online.FirstFitSorted(), "")
			return err
		}},
		{"destroy-s5", func(srv *Server) error {
			return srv.sessions.remove("s-5")
		}},
		{"s2-remove", withSession("s-2", func(s *session) error {
			_, err := s.removeTask(ctx, 0)
			return err
		})},
		// A non-first-fit policy lane: the WAL records the canonical
		// policy name ("best_fit") and replay/restore must resolve it
		// through the same ParsePolicy grammar the handlers use.
		{"create-s6-bestfit", func(srv *Server) error {
			_, err := srv.sessions.create(instance(partfeas.EDF), 1, online.BestFit(), "")
			return err
		}},
		{"s6-admit", withSession("s-6", func(s *session) error {
			_, err := s.addTask(ctx, partfeas.Task{Name: "bf", WCET: 2, Period: 9}, 0, false)
			return err
		})},
	}
}

func runScript(t testing.TB, srv *Server, steps []scriptStep) {
	t.Helper()
	for _, stp := range steps {
		if err := stp.run(srv); err != nil {
			t.Fatalf("step %s: %v", stp.name, err)
		}
	}
}

// referenceBytes builds a fresh durable store, applies the first n
// script steps, and returns its serialized bytes.
func referenceBytes(t testing.TB, steps []scriptStep, n int) []byte {
	t.Helper()
	ref := mustDurable(t, t.TempDir(), Config{FsyncInterval: -1, SnapshotEvery: -1})
	runScript(t, ref, steps[:n])
	b := storeBytes(t, ref)
	ref.Crash()
	return b
}

// TestDurableRecoveryByteIdentical proves the tentpole claim both ways a
// durable server can go down: after a clean drain (Close) the final
// snapshot carries the whole store and zero WAL records replay; after a
// simulated kill (Crash) the full op suffix replays through the live
// mutation paths. Either way the recovered store serializes to exactly
// the pre-shutdown bytes and keeps serving admissions.
func TestDurableRecoveryByteIdentical(t *testing.T) {
	steps := durabilityScript()
	for _, variant := range []string{"drain", "crash"} {
		t.Run(variant, func(t *testing.T) {
			dir := t.TempDir()
			srv := mustDurable(t, dir, Config{SnapshotEvery: -1})
			runScript(t, srv, steps)
			want := storeBytes(t, srv)
			if variant == "drain" {
				if err := srv.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			} else {
				srv.Crash()
			}
			rec := mustDurable(t, dir, Config{SnapshotEvery: -1})
			if got := storeBytes(t, rec); !bytes.Equal(got, want) {
				t.Errorf("recovered store differs:\n got %s\nwant %s", got, want)
			}
			switch variant {
			case "drain":
				if rec.dur.replayed != 0 {
					t.Errorf("replayed %d op(s) after a clean drain, want 0", rec.dur.replayed)
				}
			case "crash":
				if rec.dur.replayed != len(steps) {
					t.Errorf("replayed %d op(s) after a crash, want %d", rec.dur.replayed, len(steps))
				}
			}
			// The recovered store is live, not an archive: a further
			// admission must go through (and be logged in its turn).
			s1, err := rec.sessions.get("s-1")
			if err != nil {
				t.Fatalf("recovered s-1: %v", err)
			}
			if _, err := s1.addTask(context.Background(), partfeas.Task{Name: "probe", WCET: 1, Period: 100}, 0, false); err != nil {
				t.Errorf("admission on recovered session: %v", err)
			}
			rec.Crash()
		})
	}
}

// TestDurableCrashMatrix kills the durability layer at every injected
// crash point — append (torn, empty and durable-but-unacked writes),
// fsync, segment rotation, snapshot persistence — recovers, and asserts
// the recovered store equals a reference applying exactly the
// acknowledged ops (or those plus the single faulted op when its record
// reached the file).
func TestDurableCrashMatrix(t *testing.T) {
	steps := durabilityScript()
	type matrixCase struct {
		name     string
		segBytes int64 // WAL segment size override; 0 keeps the default
		plan     faultinject.Plan
		direct   bool // fault a direct Snapshot() call, not a script op
	}
	cases := []matrixCase{
		{name: "append-nothing-written-op1", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 1, Err: errInjectedDisk}},
		{name: "append-torn-mid-record-op6", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 6, Err: errInjectedDisk, Partial: 7}},
		{name: "append-durable-unacked-op4", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 4, Err: errInjectedDisk, Partial: 1 << 20}},
		{name: "fsync-op2", plan: faultinject.Plan{Site: faultinject.SiteWALFsync, N: 2, Err: errInjectedDisk}},
		{name: "rotate-first", segBytes: 512, plan: faultinject.Plan{Site: faultinject.SiteWALRotate, Nth: 1, Err: errInjectedDisk}},
		{name: "snapshot-write", direct: true, plan: faultinject.Plan{Site: faultinject.SiteSnapshotWrite, Nth: 1, Err: errInjectedDisk}},
	}
	if !testing.Short() {
		cases = append(cases,
			matrixCase{name: "append-nothing-written-op9", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 9, Err: errInjectedDisk}},
			matrixCase{name: "append-torn-mid-record-op15", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 15, Err: errInjectedDisk, Partial: 5}},
			matrixCase{name: "append-durable-unacked-op12", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 12, Err: errInjectedDisk, Partial: 1 << 20}},
			matrixCase{name: "append-durable-unacked-op16", plan: faultinject.Plan{Site: faultinject.SiteWALAppend, N: 16, Err: errInjectedDisk, Partial: 1 << 20}},
			matrixCase{name: "fsync-op11", plan: faultinject.Plan{Site: faultinject.SiteWALFsync, N: 11, Err: errInjectedDisk}},
			matrixCase{name: "rotate-first-tiny-segments", segBytes: 256, plan: faultinject.Plan{Site: faultinject.SiteWALRotate, Nth: 1, Err: errInjectedDisk}},
		)
	}
	for _, mc := range cases {
		t.Run(mc.name, func(t *testing.T) {
			oldSeg := walSegmentBytes
			walSegmentBytes = mc.segBytes
			defer func() { walSegmentBytes = oldSeg }()

			dir := t.TempDir()
			srv := mustDurable(t, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
			failIdx := -1
			if mc.direct {
				runScript(t, srv, steps)
				deactivate := faultinject.Activate(mc.plan)
				err := srv.dur.Snapshot()
				deactivate()
				if err == nil {
					t.Fatal("Snapshot with injected write fault: want error")
				}
			} else {
				deactivate := faultinject.Activate(mc.plan)
				errs := make([]error, len(steps))
				for i, stp := range steps {
					errs[i] = stp.run(srv)
				}
				deactivate()
				for i, err := range errs {
					if err != nil {
						failIdx = i
						break
					}
				}
				if failIdx < 0 {
					t.Fatalf("no step failed under plan %+v", mc.plan)
				}
				// The failure is sticky: once the WAL degrades, no later
				// op may be acknowledged (half-applied acks would follow).
				for i := failIdx; i < len(steps); i++ {
					if errs[i] == nil {
						t.Fatalf("step %s acknowledged after WAL degradation", steps[i].name)
					}
				}
			}
			srv.Crash()

			rec := mustDurable(t, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
			got := storeBytes(t, rec)
			rec.Crash()

			if mc.direct {
				// Every op was acknowledged; the failed snapshot must not
				// cost any of them.
				if want := referenceBytes(t, steps, len(steps)); !bytes.Equal(got, want) {
					t.Errorf("recovered store lost acknowledged ops:\n got %s\nwant %s", got, want)
				}
				return
			}
			acked := referenceBytes(t, steps, failIdx)
			plus := referenceBytes(t, steps, failIdx+1)
			switch {
			case bytes.Equal(got, acked):
				t.Logf("recovered = acked ops (faulted op %s lost, as unacknowledged)", steps[failIdx].name)
			case bytes.Equal(got, plus):
				t.Logf("recovered = acked + faulted op %s (record was durable, ack was not)", steps[failIdx].name)
			default:
				t.Errorf("recovered store matches neither acked nor acked+faulted reference:\n  got %s\nacked %s\n plus %s", got, acked, plus)
			}
		})
	}
}

// TestDestroyMutationWALOrdering regresses a WAL ordering race: a
// per-session mutation that had already passed its s.closed check could
// append its op after the session's TypeDestroy record; replay then
// applied the destroy first, hit "targets unknown session" on the
// orphaned mutation, and the server permanently refused to start from
// that WAL. remove() now closes the session under s.mu before the
// destroy record is appended, so the destroy is the session's last
// logged op by construction — this test races mutators against the
// destroy and asserts the directory always recovers.
func TestDestroyMutationWALOrdering(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 4
	}
	ctx := context.Background()
	in := partfeas.Instance{
		Tasks:     partfeas.TaskSet{{Name: "a", WCET: 1, Period: 4}, {Name: "b", WCET: 1, Period: 8}},
		Platform:  partfeas.Platform{{Name: "m0", Speed: 2}, {Name: "m1", Speed: 2}},
		Scheduler: partfeas.EDF,
	}
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		srv := mustDurable(t, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
		s, err := srv.sessions.create(in, 1, online.FirstFitSorted(), "")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					var err error
					if i%2 == 0 {
						_, err = s.addTask(ctx, partfeas.Task{Name: fmt.Sprintf("w%d-%d", w, i), WCET: 1, Period: 1000}, 0, false)
					} else {
						_, err = s.updateWCET(ctx, 0, int64(1+i%2), false)
					}
					if err == errSessionClosed {
						return
					}
					if err != nil {
						t.Errorf("worker %d op %d: %v", w, i, err)
						return
					}
				}
			}(w)
		}
		close(start)
		if err := srv.sessions.remove(s.id); err != nil {
			t.Fatalf("remove: %v", err)
		}
		wg.Wait()
		want := storeBytes(t, srv)
		srv.Crash()
		// The key assertion: the WAL must replay cleanly (pre-fix, a
		// mutation record after the destroy made this open fail).
		rec := mustDurable(t, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
		if got := storeBytes(t, rec); !bytes.Equal(got, want) {
			t.Fatalf("round %d: recovered store differs:\n got %s\nwant %s", round, got, want)
		}
		rec.Crash()
	}
}

// TestSnapshotFailureRetries pins the retry contract around a failed
// snapshot: the pending-op counter is not consumed by the failure (so
// the next acknowledged op kicks a retry instead of waiting out a full
// snapshot window with no snapshot taken), and the failure is visible
// to operators via partfeas_wal_snapshot_failures_total.
func TestSnapshotFailureRetries(t *testing.T) {
	srv := mustDurable(t, t.TempDir(), Config{FsyncInterval: -1, SnapshotEvery: 1 << 20})
	steps := durabilityScript()[:5]
	runScript(t, srv, steps)
	d := srv.dur
	pending := func() int {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.sinceSnap
	}
	if got := pending(); got != len(steps) {
		t.Fatalf("sinceSnap = %d after %d acknowledged ops", got, len(steps))
	}

	deactivate := faultinject.Activate(faultinject.Plan{Site: faultinject.SiteSnapshotWrite, Nth: 1, Err: errInjectedDisk})
	err := d.Snapshot()
	deactivate()
	if err == nil {
		t.Fatal("Snapshot with injected write fault: want error")
	}
	if got := pending(); got != len(steps) {
		t.Errorf("failed snapshot consumed the pending-op counter: sinceSnap = %d, want %d", got, len(steps))
	}
	if ws := d.walStats(); ws.SnapshotFailures != 1 || ws.Snapshots != 0 || ws.LastSnapshot != 0 {
		t.Errorf("stats after failure = %+v, want 1 failure and no snapshot", ws)
	}
	w := do(t, srv, "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), "partfeas_wal_snapshot_failures_total 1") {
		t.Errorf("metrics do not report the snapshot failure:\n%s", w.Body)
	}

	// With the fault gone the retry succeeds and resets the counter.
	if err := d.Snapshot(); err != nil {
		t.Fatalf("retry Snapshot: %v", err)
	}
	if got := pending(); got != 0 {
		t.Errorf("sinceSnap = %d after successful snapshot, want 0", got)
	}
	if ws := d.walStats(); ws.Snapshots != 1 || ws.LastSnapshot != uint64(len(steps)) {
		t.Errorf("stats after retry = %+v, want one snapshot at index %d", ws, len(steps))
	}
}

// TestReplayFaultPanic covers the recovery-side crash point: a panic in
// the middle of WAL replay (the injected stand-in for dying during
// recovery) must leave the directory recoverable — the next open replays
// the same suffix to the same bytes.
func TestReplayFaultPanic(t *testing.T) {
	steps := durabilityScript()
	dir := t.TempDir()
	srv := mustDurable(t, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
	runScript(t, srv, steps)
	want := storeBytes(t, srv)
	srv.Crash()

	deactivate := faultinject.Activate(faultinject.Plan{Site: faultinject.SiteWALReplay, N: 3, Panic: true})
	func() {
		defer deactivate()
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("recovery with an injected replay panic: want panic")
			}
			if !strings.Contains(fmt.Sprint(v), "injected panic at oplog/replay") {
				t.Fatalf("unexpected panic payload: %v", v)
			}
		}()
		_, _ = NewDurable(Config{DataDir: dir, FsyncInterval: -1, SnapshotEvery: -1})
	}()

	rec := mustDurable(t, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
	if got := storeBytes(t, rec); !bytes.Equal(got, want) {
		t.Errorf("recovery after replay crash differs:\n got %s\nwant %s", got, want)
	}
	rec.Crash()
}

// TestDegradedReadOnly pins the failure-mode contract at the HTTP
// boundary: after a WAL write fails, every mutation answers 503 with a
// Retry-After header — including after the injected fault is gone,
// because the failure latches — while reads keep serving and the
// degradation is visible in /metrics.
func TestDegradedReadOnly(t *testing.T) {
	srv := mustDurable(t, t.TempDir(), Config{FsyncInterval: -1, SnapshotEvery: -1})
	w := do(t, srv, "POST", "/v1/sessions", `{"tasks":[{"name":"a","wcet":1,"period":4}],"speeds":[1]}`)
	if w.Code != 201 {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Durability"); got != "wal" {
		t.Errorf("X-Durability = %q, want %q", got, "wal")
	}
	if !strings.Contains(w.Body.String(), `"durability":"wal"`) {
		t.Errorf("create response lacks durability field: %s", w.Body)
	}

	deactivate := faultinject.Activate(faultinject.Plan{Site: faultinject.SiteWALAppend, N: 2, Err: errInjectedDisk})
	w = do(t, srv, "POST", "/v1/sessions/s-1/tasks", `{"task":{"name":"b","wcet":1,"period":50}}`)
	deactivate()
	if w.Code != 503 {
		t.Fatalf("mutation with failed WAL: %d, want 503 (%s)", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After = %q, want %q", got, "30")
	}

	// The fault plan is gone, but the WAL failure latched: still 503.
	w = do(t, srv, "POST", "/v1/sessions/s-1/tasks", `{"task":{"name":"c","wcet":1,"period":60}}`)
	if w.Code != 503 {
		t.Errorf("mutation after latch: %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After after latch = %q, want %q", got, "30")
	}

	// Reads keep working, and the rejected admission changed nothing.
	w = do(t, srv, "GET", "/v1/sessions/s-1", "")
	if w.Code != 200 {
		t.Errorf("read in degraded mode: %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"tasks":[{"name":"a"`) || strings.Contains(w.Body.String(), `"name":"b"`) {
		t.Errorf("degraded store mutated: %s", w.Body)
	}

	w = do(t, srv, "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), "partfeas_wal_degraded 1") {
		t.Errorf("metrics do not report degradation:\n%s", w.Body)
	}
}

// TestDurabilityReporting pins the opt-out side: a server without a data
// directory answers mutations with durability "none" in both the header
// and the body, and exports no partfeas_wal_* metrics.
func TestDurabilityReporting(t *testing.T) {
	srv := newTestServer(t)
	w := do(t, srv, "POST", "/v1/sessions", `{"tasks":[{"name":"a","wcet":1,"period":4}],"speeds":[1]}`)
	if w.Code != 201 {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Durability"); got != "none" {
		t.Errorf("X-Durability = %q, want %q", got, "none")
	}
	if !strings.Contains(w.Body.String(), `"durability":"none"`) {
		t.Errorf("create response lacks durability field: %s", w.Body)
	}
	w = do(t, srv, "GET", "/metrics", "")
	if strings.Contains(w.Body.String(), "partfeas_wal_") {
		t.Errorf("non-durable server exports WAL metrics:\n%s", w.Body)
	}
}

// TestDrainReplaysZero is the clean-shutdown satellite in isolation: a
// SIGTERM-style drain (Shutdown flushes the group-commit buffer and
// writes a final snapshot) leaves a directory whose next open replays
// zero WAL records.
func TestDrainReplaysZero(t *testing.T) {
	dir := t.TempDir()
	srv := mustDurable(t, dir, Config{})
	runScript(t, srv, durabilityScript()[:5])
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	rec := mustDurable(t, dir, Config{})
	if rec.dur.replayed != 0 {
		t.Errorf("replayed %d op(s) after clean drain, want 0", rec.dur.replayed)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// BenchmarkRecovery measures a cold open of a data directory whose
// whole history lives in the WAL (snapshots disabled), i.e. the
// worst-case replay path: every op re-runs through the live engine.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	srv := mustDurable(b, dir, Config{FsyncInterval: -1, SnapshotEvery: -1})
	runScript(b, srv, durabilityScript())
	srv.Crash() // no final snapshot: force a full replay per open
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := NewDurable(Config{DataDir: dir, FsyncInterval: -1, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		rec.Crash() // leave the WAL untouched for the next iteration
	}
}
