package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Config tunes a Server. The zero value is serviceable: listen on
// :8377, 30s default / 120s max request deadline, 16 pool shards with 4
// idle testers per instance, 1024 sessions, 2M-node analyze budget.
type Config struct {
	// Addr is the listen address; empty means ":8377".
	Addr string
	// DefaultTimeout bounds requests that do not carry timeout_ms;
	// 0 means 30s, negative means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request deadline (including client-supplied
	// timeout_ms); 0 means 120s, negative means unclamped.
	MaxTimeout time.Duration
	// PoolShards, PoolMaxIdlePerKey and PoolMaxKeys size the tester
	// cache (NewTesterPool defaults apply on 0). PoolMaxKeys bounds the
	// distinct instances cached pool-wide; excess keys are evicted LRU.
	PoolShards        int
	PoolMaxIdlePerKey int
	PoolMaxKeys       int
	// MaxSessions caps live admission sessions; 0 means 1024.
	MaxSessions int
	// AnalyzeBudget is the default exact-adversary node budget for
	// /v1/analyze; 0 means 2,000,000. Exhaustion degrades the analysis, it
	// never fails it.
	AnalyzeBudget int64
	// Logf receives lifecycle and panic lines; nil discards them.
	Logf func(format string, args ...any)

	// DataDir, when non-empty, enables durability: every session-mutating
	// op is appended to a write-ahead log under this directory before it
	// is acknowledged, and periodic snapshots bound recovery replay. Only
	// NewDurable honors it; New ignores the durability fields entirely.
	DataDir string
	// FsyncInterval is the group-commit window: writes reach the OS on
	// every append (process-crash safe), fsync runs on this cadence
	// (power-loss window). 0 means 5ms; negative means fsync every append.
	FsyncInterval time.Duration
	// SnapshotEvery triggers a snapshot after this many appended ops.
	// 0 means 1024; negative disables automatic snapshots (Close still
	// writes a final one).
	SnapshotEvery int
}

// Server is the admission-control service: the handler set plus the
// shared tester pool, session store and metrics registry. Construct with
// New, then either mount Handler into an existing http.Server or use
// Listen/Serve/Shutdown for the managed lifecycle.
type Server struct {
	cfg      Config
	pool     *TesterPool
	sessions *sessionStore
	metrics  *Metrics
	handler  http.Handler

	hs *http.Server
	ln net.Listener

	// peerClient carries migration traffic to other replicas.
	peerClient *http.Client

	// dur is nil unless the server was built with NewDurable; every
	// durability hook is nil-receiver-safe, so the non-durable path pays
	// one branch per call site.
	dur *durability
}

// New builds a Server from cfg (see Config for zero-value defaults).
func New(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":8377"
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = 120 * time.Second
	}
	if cfg.DefaultTimeout < 0 {
		cfg.DefaultTimeout = 0
	}
	if cfg.MaxTimeout < 0 {
		cfg.MaxTimeout = 0
	}
	if cfg.AnalyzeBudget <= 0 {
		cfg.AnalyzeBudget = 2_000_000
	}
	s := &Server{
		cfg:        cfg,
		pool:       NewTesterPool(cfg.PoolShards, cfg.PoolMaxIdlePerKey, cfg.PoolMaxKeys),
		sessions:   newSessionStore(cfg.MaxSessions),
		peerClient: &http.Client{},
	}
	s.metrics = NewMetrics(s.sessions.count, s.pool.Stats)
	s.sessions.mx = s.metrics
	s.handler = s.routes()
	return s
}

// NewDurable builds a Server whose session mutations are durable: it
// recovers the session store from cfg.DataDir (latest valid snapshot plus
// write-ahead log replay through the real engine paths), then arranges
// for every subsequent mutation to be appended — and acknowledged — via
// the WAL. cfg.DataDir must be non-empty. The caller owns Close (Shutdown
// calls it), which drains the group-commit buffer and writes a final
// snapshot.
func NewDurable(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: NewDurable requires Config.DataDir")
	}
	fsync := cfg.FsyncInterval
	if fsync == 0 {
		fsync = 5 * time.Millisecond
	} else if fsync < 0 {
		fsync = 0 // oplog convention: 0 = fsync on every append
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 1024
	} else if snapEvery < 0 {
		snapEvery = 0 // durability convention: 0 = no automatic snapshots
	}
	s := New(cfg)
	dur, err := openDurability(cfg.DataDir, fsync, snapEvery, s.sessions, s.logf)
	if err != nil {
		return nil, err
	}
	s.dur = dur
	s.metrics.walStats = dur.walStats
	return s, nil
}

// Close releases the durability layer: it flushes the WAL group-commit
// buffer, writes a final snapshot, and closes the log. A server built
// with New has nothing to release. Safe to call more than once.
func (s *Server) Close() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.Close()
}

// Crash abandons the durability layer without the final fsync or
// snapshot, simulating a process kill: records whose write syscalls
// completed survive, buffered fsync state is lost. Test and loadgen
// hook; a production server should use Close.
func (s *Server) Crash() {
	s.dur.crash()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler exposes the full route set for embedding and tests.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the registry (the servesmoke gate reads cache ratios
// through it without scraping).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Pool exposes the tester cache.
func (s *Server) Pool() *TesterPool { return s.pool }

// Listen binds the configured address (":0" picks an ephemeral port;
// read it back with Addr) without serving yet.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.handler}
	return nil
}

// Addr returns the bound address after Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Serve blocks serving the bound listener; it returns
// http.ErrServerClosed after a graceful Shutdown.
func (s *Server) Serve() error {
	if s.hs == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	s.logf("service: serving on %s", s.Addr())
	return s.hs.Serve(s.ln)
}

// Shutdown drains gracefully: the listener closes immediately, in-flight
// requests run to completion (their contexts are not cancelled), and the
// call returns when the last one finishes or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return s.Close()
	}
	s.logf("service: draining")
	err := s.hs.Shutdown(ctx)
	// With every in-flight request finished, the WAL buffer drains and
	// the final snapshot covers all acknowledged ops — a restart after a
	// clean drain replays zero records.
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	s.logf("service: stopped")
	return err
}
