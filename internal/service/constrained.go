package service

// Constrained-deadline sessions: the service face of the online engine's
// tiered DBF admission (ISSUE 7). A session created with deadline_model
// "constrained" carries a relative deadline D ≤ P per task and answers
// every admission through online.NewConstrained's pipeline — density
// pre-filter, approximate demand band, exact processor-demand test —
// with verdicts identical to a fresh exact constrained first-fit solve.
//
// Constrained sessions are engine-only. The batch-tester fallback that
// lets implicit sessions hold force-committed infeasible sets has no
// constrained counterpart, so force commits are refused, sessions cannot
// be created infeasible, and a removal the engine refuses stays resident
// (rolled back) instead of disarming the engine.

import (
	"errors"
	"fmt"
	"net/http"

	"partfeas"
	"partfeas/internal/dbf"
	"partfeas/internal/online"
	"partfeas/internal/partition"
)

// sessionApproxK is the linearization depth of constrained sessions'
// approximate tier. Deeper envelopes sharpen the approximate band but
// grow per-machine state linearly; 8 keeps the exact tier rare on
// realistic mixes without measurable envelope cost.
const sessionApproxK = 8

var (
	errConstrainedForce = &httpError{
		code: http.StatusBadRequest,
		msg:  "force is not supported in constrained-deadline sessions (no infeasible fallback path)",
	}
	errConstrainedRepartition = &httpError{
		code: http.StatusConflict,
		msg:  "repartition is not supported in constrained-deadline sessions",
	}
	errConstrainedDeadline = &httpError{
		code: http.StatusBadRequest,
		msg:  "task deadlines require a constrained-deadline session (create with deadline_model \"constrained\")",
	}
)

// checkDeadlineArg vets a mutation's deadline argument against the
// session's model: implicit sessions only accept 0 or D = P, and
// constrained sessions refuse force.
func (s *session) checkDeadlineArg(dl, period int64, force bool) error {
	if !s.constrained {
		if dl != 0 && dl != period {
			return errConstrainedDeadline
		}
		return nil
	}
	if force {
		return errConstrainedForce
	}
	return nil
}

// deadlineOf resolves a wire deadline (0 = implicit) to the stored one.
func (s *session) deadlineOf(t partfeas.Task, dl int64) int64 {
	if dl == 0 {
		return t.Period
	}
	return dl
}

// constrainedTask builds the engine-facing task for one admission.
func (s *session) constrainedTask(t partfeas.Task, dl int64) dbf.Task {
	return dbf.Task{Name: t.Name, WCET: t.WCET, Deadline: s.deadlineOf(t, dl), Period: t.Period}
}

// constrainedSet materializes the resident multiset with its deadlines.
func (s *session) constrainedSet() dbf.Set {
	cs := make(dbf.Set, len(s.in.Tasks))
	for i, t := range s.in.Tasks {
		cs[i] = dbf.Task{Name: t.Name, WCET: t.WCET, Deadline: s.dls[i], Period: t.Period}
	}
	return cs
}

// freshConstrainedReport runs a fresh exact constrained first-fit solve
// over the resident set at an ad-hoc alpha (the session engine's state
// is only valid at the session alpha). Caller holds s.mu.
func (s *session) freshConstrainedReport(alpha float64) (partfeas.Report, error) {
	feasible, assignment, err := dbf.FirstFit(s.constrainedSet(), s.in.Platform, alpha, 0)
	if err != nil {
		return partfeas.Report{}, &httpError{code: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	res := partition.Result{
		Feasible:   feasible,
		Assignment: assignment,
		FailedTask: -1,
		Loads:      make([]float64, len(s.in.Platform)),
		Alpha:      alpha,
	}
	for i, j := range assignment {
		if j >= 0 {
			res.Loads[j] += s.in.Tasks[i].Utilization()
		} else if res.FailedTask < 0 {
			res.FailedTask = i
		}
	}
	return partfeas.Report{
		Accepted:  feasible,
		Scheduler: s.in.Scheduler,
		Alpha:     alpha,
		Partition: res,
	}, nil
}

// createConstrained opens a constrained-deadline session. Unlike the
// implicit path there is no infeasible fallback: a set the tiered
// pipeline cannot place at the session alpha fails creation, and a
// typed analysis error (horizon or demand overflow) is surfaced rather
// than downgraded to a verdict.
func (st *sessionStore) createConstrained(in partfeas.Instance, dls []int64, alpha float64, placement online.Policy, id string) (*session, error) {
	defer st.dur.rlock()()
	if in.Scheduler != partfeas.EDF {
		return nil, &httpError{code: http.StatusBadRequest, msg: "constrained-deadline sessions require the EDF scheduler"}
	}
	eng, err := online.NewEngine(in.Tasks, in.Platform, online.Options{
		Policy: placement, Alpha: alpha, Deadlines: dls, ApproxK: sessionApproxK,
	})
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, online.ErrInfeasible) {
			code = http.StatusConflict
		}
		return nil, &httpError{code: code, msg: fmt.Sprintf("constrained session: %v", err)}
	}
	s := &session{
		in: partfeas.Instance{
			Tasks:     in.Tasks.Clone(),
			Platform:  in.Platform.Clone(),
			Scheduler: in.Scheduler,
		},
		alpha:       alpha,
		placement:   placement,
		constrained: true,
		dls:         append([]int64(nil), dls...),
		eng:         eng,
		epoch:       1,
		mx:          st.mx,
		dur:         st.dur,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.assignID(s, id); err != nil {
		return nil, err
	}
	if err := st.dur.logOp(createOp(s, s.dls)); err != nil {
		if id == "" {
			st.seq--
		}
		return nil, err
	}
	st.m[s.id] = s
	return s, nil
}
