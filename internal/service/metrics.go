package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latency histogram: exponential buckets doubling from 1µs; bucket i
// covers durations up to 1µs·2^i, the last bucket is the overflow.
const (
	histBuckets = 26 // 1µs … ~33s, then overflow
	histBase    = time.Microsecond
)

// Metrics aggregates the counters behind the /metrics endpoint: request
// counts by endpoint and status code, in-flight and cancellation gauges,
// tester-cache hit ratio, and request-latency quantiles (p50/p90/p99)
// estimated from a log-bucketed histogram. All hot-path updates are
// atomics or a single short-held mutex, so the handlers can record at
// full request rate.
type Metrics struct {
	start time.Time

	inFlight atomic.Int64
	canceled atomic.Uint64

	mu       sync.Mutex
	requests map[reqKey]uint64

	hist    [histBuckets + 1]atomic.Uint64
	histCnt atomic.Uint64
	histSum atomic.Uint64 // nanoseconds

	// Per-path session-admission counters and latency histograms
	// (engine mutation time, not whole-request time).
	admitHist [nPaths][histBuckets + 1]atomic.Uint64
	admitCnt  [nPaths]atomic.Uint64
	admitSum  [nPaths]atomic.Uint64 // nanoseconds

	// Session migration counters: completed outbound/inbound handoffs,
	// failed attempts, and the end-to-end duration of outbound ones.
	migrOut    atomic.Uint64
	migrIn     atomic.Uint64
	migrFailed atomic.Uint64
	migrHist   [histBuckets + 1]atomic.Uint64
	migrSum    atomic.Uint64 // nanoseconds

	// sessionsActive, poolStats and walStats are read at scrape time.
	// walStats is nil on a non-durable server, which omits the
	// partfeas_wal_* family entirely.
	sessionsActive func() int
	poolStats      func() PoolStats
	walStats       func() WALStats
}

type reqKey struct {
	endpoint string
	code     int
}

// AdmissionPath classifies how a session admission was executed, as
// reported by the engine's per-op stats: the end-of-order fast path, an
// interior suffix replay, an explicit admit-batch request, or a group
// of concurrent single admits the session coalesced into one merged
// replay.
type AdmissionPath int

const (
	PathTail AdmissionPath = iota
	PathInterior
	PathBatch
	PathCoalesced
	// The tier paths classify constrained-deadline (DBF) admissions by
	// the deepest tier that decided them: the O(1) density pre-filter,
	// the approximate k-point demand band, or the exact processor-demand
	// test. A constrained single admit records on both axes — tail/
	// interior for where it landed, and one tier path for how hard the
	// feasibility question was.
	PathDensity
	PathDBFApprox
	PathDBFExact
	nPaths
)

func (p AdmissionPath) String() string {
	switch p {
	case PathTail:
		return "tail"
	case PathInterior:
		return "interior"
	case PathBatch:
		return "batch"
	case PathCoalesced:
		return "coalesced"
	case PathDensity:
		return "density"
	case PathDBFApprox:
		return "dbf_approx"
	case PathDBFExact:
		return "dbf_exact"
	default:
		return fmt.Sprintf("path%d", int(p))
	}
}

// TierPath maps the engine's per-op MaxTier (1-based) to its admission
// path; ok is false for implicit-deadline ops (tier 0).
func TierPath(tier int) (AdmissionPath, bool) {
	switch tier {
	case 1:
		return PathDensity, true
	case 2:
		return PathDBFApprox, true
	case 3:
		return PathDBFExact, true
	default:
		return 0, false
	}
}

// NewMetrics builds the metrics registry; sessions and pool are read
// lazily at scrape time (either may be nil).
func NewMetrics(sessions func() int, pool func() PoolStats) *Metrics {
	return &Metrics{
		start:          time.Now(),
		requests:       map[reqKey]uint64{},
		sessionsActive: sessions,
		poolStats:      pool,
	}
}

// RequestStarted marks a request in flight; pair with RequestDone.
func (m *Metrics) RequestStarted() { m.inFlight.Add(1) }

// RequestDone records one finished request.
func (m *Metrics) RequestDone(endpoint string, code int, d time.Duration) {
	m.inFlight.Add(-1)
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	m.mu.Unlock()
	m.hist[bucketOf(d)].Add(1)
	m.histCnt.Add(1)
	m.histSum.Add(uint64(d.Nanoseconds()))
}

// RequestCanceled counts a request abandoned by its client mid-flight.
func (m *Metrics) RequestCanceled() { m.canceled.Add(1) }

// AdmissionObserved records one session admission served on the given
// path, with the time the engine mutation took.
func (m *Metrics) AdmissionObserved(p AdmissionPath, d time.Duration) {
	if p < 0 || p >= nPaths {
		return
	}
	m.admitHist[p][bucketOf(d)].Add(1)
	m.admitCnt[p].Add(1)
	m.admitSum[p].Add(uint64(d.Nanoseconds()))
}

// MigrationOut records one completed outbound session handoff and its
// end-to-end duration (snapshot through confirmed commit).
func (m *Metrics) MigrationOut(d time.Duration) {
	m.migrOut.Add(1)
	m.migrHist[bucketOf(d)].Add(1)
	m.migrSum.Add(uint64(d.Nanoseconds()))
}

// MigrationIn records one session activated here by an inbound handoff.
func (m *Metrics) MigrationIn() { m.migrIn.Add(1) }

// MigrationFailed records one migration attempt that did not complete
// (the session is either still live at the source or re-drivable).
func (m *Metrics) MigrationFailed() { m.migrFailed.Add(1) }

// admitQuantile estimates the q-quantile of one path's admission
// latency histogram; 0 with no data.
func (m *Metrics) admitQuantile(p AdmissionPath, q float64) time.Duration {
	total := m.admitCnt[p].Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += m.admitHist[p][i].Load()
		if cum > rank {
			if i == histBuckets {
				return histBase << uint(histBuckets-1)
			}
			return histBase << uint(i)
		}
	}
	return histBase << uint(histBuckets-1)
}

// histQuantile estimates the q-quantile of a log-bucketed histogram with
// the given observation count; 0 with no data.
func histQuantile(hist *[histBuckets + 1]atomic.Uint64, total uint64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += hist[i].Load()
		if cum > rank {
			if i == histBuckets {
				return histBase << uint(histBuckets-1)
			}
			return histBase << uint(i)
		}
	}
	return histBase << uint(histBuckets-1)
}

func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	for i := 0; i < histBuckets; i++ {
		if d <= histBase<<uint(i) {
			return i
		}
	}
	return histBuckets
}

// quantile estimates the q-quantile (0 < q < 1) from the histogram as the
// upper bound of the bucket holding the q-th observation; 0 with no data.
func (m *Metrics) quantile(q float64) time.Duration {
	total := m.histCnt.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += m.hist[i].Load()
		if cum > rank {
			if i == histBuckets {
				return histBase << uint(histBuckets-1)
			}
			return histBase << uint(i)
		}
	}
	return histBase << uint(histBuckets-1)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, deterministically ordered.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP partfeas_uptime_seconds Time since server start.\n")
	fmt.Fprintf(w, "# TYPE partfeas_uptime_seconds gauge\n")
	fmt.Fprintf(w, "partfeas_uptime_seconds %g\n", time.Since(m.start).Seconds())

	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	counts := make(map[reqKey]uint64, len(m.requests))
	for k, v := range m.requests {
		counts[k] = v
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP partfeas_http_requests_total Finished requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE partfeas_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "partfeas_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, counts[k])
	}

	fmt.Fprintf(w, "# HELP partfeas_http_in_flight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE partfeas_http_in_flight gauge\n")
	fmt.Fprintf(w, "partfeas_http_in_flight %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP partfeas_http_requests_canceled_total Requests abandoned by their client mid-flight.\n")
	fmt.Fprintf(w, "# TYPE partfeas_http_requests_canceled_total counter\n")
	fmt.Fprintf(w, "partfeas_http_requests_canceled_total %d\n", m.canceled.Load())

	if m.poolStats != nil {
		st := m.poolStats()
		fmt.Fprintf(w, "# HELP partfeas_tester_cache_hits_total Tester-pool cache hits.\n")
		fmt.Fprintf(w, "# TYPE partfeas_tester_cache_hits_total counter\n")
		fmt.Fprintf(w, "partfeas_tester_cache_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP partfeas_tester_cache_misses_total Tester-pool cache misses.\n")
		fmt.Fprintf(w, "# TYPE partfeas_tester_cache_misses_total counter\n")
		fmt.Fprintf(w, "partfeas_tester_cache_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# HELP partfeas_tester_cache_idle Testers currently cached.\n")
		fmt.Fprintf(w, "# TYPE partfeas_tester_cache_idle gauge\n")
		fmt.Fprintf(w, "partfeas_tester_cache_idle %d\n", st.Idle)
		fmt.Fprintf(w, "# HELP partfeas_tester_cache_keys Distinct instances currently cached.\n")
		fmt.Fprintf(w, "# TYPE partfeas_tester_cache_keys gauge\n")
		fmt.Fprintf(w, "partfeas_tester_cache_keys %d\n", st.Keys)
		fmt.Fprintf(w, "# HELP partfeas_tester_pool_evictions_total Instance keys evicted by the pool's LRU key bound.\n")
		fmt.Fprintf(w, "# TYPE partfeas_tester_pool_evictions_total counter\n")
		fmt.Fprintf(w, "partfeas_tester_pool_evictions_total %d\n", st.Evictions)
		ratio := 0.0
		if st.Hits+st.Misses > 0 {
			ratio = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		fmt.Fprintf(w, "# HELP partfeas_tester_cache_hit_ratio Hits / (hits + misses) since start.\n")
		fmt.Fprintf(w, "# TYPE partfeas_tester_cache_hit_ratio gauge\n")
		fmt.Fprintf(w, "partfeas_tester_cache_hit_ratio %g\n", ratio)
	}

	if m.sessionsActive != nil {
		fmt.Fprintf(w, "# HELP partfeas_sessions_active Open admission sessions.\n")
		fmt.Fprintf(w, "# TYPE partfeas_sessions_active gauge\n")
		fmt.Fprintf(w, "partfeas_sessions_active %d\n", m.sessionsActive())
	}

	fmt.Fprintf(w, "# HELP partfeas_migrations_total Completed session migrations by direction.\n")
	fmt.Fprintf(w, "# TYPE partfeas_migrations_total counter\n")
	fmt.Fprintf(w, "partfeas_migrations_total{direction=\"out\"} %d\n", m.migrOut.Load())
	fmt.Fprintf(w, "partfeas_migrations_total{direction=\"in\"} %d\n", m.migrIn.Load())
	fmt.Fprintf(w, "# HELP partfeas_migration_failures_total Migration attempts that did not complete.\n")
	fmt.Fprintf(w, "# TYPE partfeas_migration_failures_total counter\n")
	fmt.Fprintf(w, "partfeas_migration_failures_total %d\n", m.migrFailed.Load())
	fmt.Fprintf(w, "# HELP partfeas_migration_duration_seconds Outbound migration end-to-end latency quantiles (log-bucket upper bounds).\n")
	fmt.Fprintf(w, "# TYPE partfeas_migration_duration_seconds summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "partfeas_migration_duration_seconds{quantile=\"%g\"} %g\n", q, histQuantile(&m.migrHist, m.migrOut.Load(), q).Seconds())
	}
	fmt.Fprintf(w, "partfeas_migration_duration_seconds_sum %g\n", float64(m.migrSum.Load())/1e9)
	fmt.Fprintf(w, "partfeas_migration_duration_seconds_count %d\n", m.migrOut.Load())

	fmt.Fprintf(w, "# HELP partfeas_admissions_total Session admissions by engine path.\n")
	fmt.Fprintf(w, "# TYPE partfeas_admissions_total counter\n")
	for p := AdmissionPath(0); p < nPaths; p++ {
		fmt.Fprintf(w, "partfeas_admissions_total{path=%q} %d\n", p.String(), m.admitCnt[p].Load())
	}
	fmt.Fprintf(w, "# HELP partfeas_admission_duration_seconds Engine admission latency quantiles by path (log-bucket upper bounds).\n")
	fmt.Fprintf(w, "# TYPE partfeas_admission_duration_seconds summary\n")
	for p := AdmissionPath(0); p < nPaths; p++ {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "partfeas_admission_duration_seconds{path=%q,quantile=\"%g\"} %g\n", p.String(), q, m.admitQuantile(p, q).Seconds())
		}
		fmt.Fprintf(w, "partfeas_admission_duration_seconds_sum{path=%q} %g\n", p.String(), float64(m.admitSum[p].Load())/1e9)
		fmt.Fprintf(w, "partfeas_admission_duration_seconds_count{path=%q} %d\n", p.String(), m.admitCnt[p].Load())
	}

	if m.walStats != nil {
		ws := m.walStats()
		fmt.Fprintf(w, "# HELP partfeas_wal_appends_total Ops appended to the write-ahead log.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_appends_total counter\n")
		fmt.Fprintf(w, "partfeas_wal_appends_total %d\n", ws.Appends)
		fmt.Fprintf(w, "# HELP partfeas_wal_fsyncs_total Group-commit fsyncs issued on the active segment.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_fsyncs_total counter\n")
		fmt.Fprintf(w, "partfeas_wal_fsyncs_total %d\n", ws.Fsyncs)
		fmt.Fprintf(w, "# HELP partfeas_wal_rotations_total Segment rotations.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_rotations_total counter\n")
		fmt.Fprintf(w, "partfeas_wal_rotations_total %d\n", ws.Rotations)
		fmt.Fprintf(w, "# HELP partfeas_wal_snapshots_total Snapshots written since start.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_snapshots_total counter\n")
		fmt.Fprintf(w, "partfeas_wal_snapshots_total %d\n", ws.Snapshots)
		fmt.Fprintf(w, "# HELP partfeas_wal_snapshot_failures_total Snapshot attempts that failed (persistent failure lets the WAL grow unbounded).\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_snapshot_failures_total counter\n")
		fmt.Fprintf(w, "partfeas_wal_snapshot_failures_total %d\n", ws.SnapshotFailures)
		fmt.Fprintf(w, "# HELP partfeas_wal_segments Live WAL segment files.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_segments gauge\n")
		fmt.Fprintf(w, "partfeas_wal_segments %d\n", ws.Segments)
		fmt.Fprintf(w, "# HELP partfeas_wal_segment_bytes Bytes in the active segment.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_segment_bytes gauge\n")
		fmt.Fprintf(w, "partfeas_wal_segment_bytes %d\n", ws.SegmentBytes)
		fmt.Fprintf(w, "# HELP partfeas_wal_next_index Index the next appended op will take.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_next_index gauge\n")
		fmt.Fprintf(w, "partfeas_wal_next_index %d\n", ws.NextIndex)
		fmt.Fprintf(w, "# HELP partfeas_wal_last_snapshot_index Last op index covered by a snapshot.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_last_snapshot_index gauge\n")
		fmt.Fprintf(w, "partfeas_wal_last_snapshot_index %d\n", ws.LastSnapshot)
		degraded := 0
		if ws.Degraded {
			degraded = 1
		}
		fmt.Fprintf(w, "# HELP partfeas_wal_degraded 1 while the server is read-only after a WAL failure.\n")
		fmt.Fprintf(w, "# TYPE partfeas_wal_degraded gauge\n")
		fmt.Fprintf(w, "partfeas_wal_degraded %d\n", degraded)
	}

	fmt.Fprintf(w, "# HELP partfeas_http_request_duration_seconds Request latency quantiles (log-bucket upper bounds).\n")
	fmt.Fprintf(w, "# TYPE partfeas_http_request_duration_seconds summary\n")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "partfeas_http_request_duration_seconds{quantile=\"%g\"} %g\n", q, m.quantile(q).Seconds())
	}
	fmt.Fprintf(w, "partfeas_http_request_duration_seconds_sum %g\n", float64(m.histSum.Load())/1e9)
	fmt.Fprintf(w, "partfeas_http_request_duration_seconds_count %d\n", m.histCnt.Load())
}
