package sim

import (
	"fmt"
	"sort"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

// GlobalResult summarizes a global (migrating) multiprocessor simulation.
type GlobalResult struct {
	// Misses lists deadline violations in completion order.
	Misses []Miss
	// JobsReleased and JobsCompleted count jobs within the horizon.
	JobsReleased  int64
	JobsCompleted int64
	// Migrations counts events where a job resumes on a different
	// machine than it last ran on.
	Migrations int64
	// Preemptions counts events where a running job loses its machine to
	// a different job while still unfinished.
	Preemptions int64
}

// SimulateGlobal runs global preemptive scheduling on a uniform
// multiprocessor: at every scheduling event the k-th highest-priority
// ready job runs on the k-th fastest machine (the standard greedy rule
// for related machines). Jobs migrate freely between events. This is the
// baseline the partitioned test gives up — global EDF is subject to the
// Dhall effect and is NOT optimal, which experiment E14 quantifies
// against the partitioned test and the fluid LP bound.
//
// Releases follow the synchronous periodic pattern over [0, horizon);
// the simulation runs until every released job completes.
func SimulateGlobal(ts task.Set, p machine.Platform, policy Policy, horizon int64) (GlobalResult, error) {
	var res GlobalResult
	if err := ts.Validate(); err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	if err := p.Validate(); err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	if horizon <= 0 {
		return res, ErrHorizon
	}
	if policy != PolicyEDF && policy != PolicyRM {
		return res, fmt.Errorf("sim: unknown policy %d", int(policy))
	}

	// Machines fastest-first, as exact rationals.
	speeds := make([]rational.Rat, len(p))
	order := make([]int, len(p))
	for j := range p {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool { return p[order[a]].Speed > p[order[b]].Speed })
	for k, j := range order {
		s, err := p[j].SpeedRat()
		if err != nil {
			return res, fmt.Errorf("sim: machine %d: %w", j, err)
		}
		if s.Sign() <= 0 {
			return res, fmt.Errorf("sim: machine %d speed %v must be positive", j, s)
		}
		speeds[k] = s
	}

	horizonR := rational.FromInt(horizon)
	rank := rmRanks(ts)
	nextRelease := make([]rational.Rat, len(ts))
	for i := range ts {
		nextRelease[i] = rational.Zero()
	}
	lastMachine := make(map[*job]int)

	var ready []*job
	now := rational.Zero()
	prevRunning := map[*job]bool{}

	higherPriority := func(a, b *job) bool {
		switch policy {
		case PolicyEDF:
			c := a.deadline.Cmp(b.deadline)
			if c != 0 {
				return c < 0
			}
			return a.taskIdx < b.taskIdx
		default:
			if rank[a.taskIdx] != rank[b.taskIdx] {
				return rank[a.taskIdx] < rank[b.taskIdx]
			}
			return a.release.Less(b.release)
		}
	}

	releaseDue := func() error {
		for i, t := range ts {
			for nextRelease[i].Less(horizonR) && nextRelease[i].LessEq(now) {
				rel := nextRelease[i]
				dl, err := rel.Add(rational.FromInt(t.Period))
				if err != nil {
					return fmt.Errorf("sim: %w", err)
				}
				ready = append(ready, &job{
					taskIdx: i, release: rel, deadline: dl,
					remaining: rational.FromInt(t.WCET),
				})
				res.JobsReleased++
				nextRelease[i], err = rel.Add(rational.FromInt(t.Period))
				if err != nil {
					return fmt.Errorf("sim: %w", err)
				}
			}
		}
		return nil
	}

	earliestRelease := func() (rational.Rat, bool) {
		var best rational.Rat
		found := false
		for i := range ts {
			if nextRelease[i].Less(horizonR) {
				if !found || nextRelease[i].Less(best) {
					best = nextRelease[i]
					found = true
				}
			}
		}
		return best, found
	}

	const maxEvents = 50_000_000
	for events := 0; ; events++ {
		if events > maxEvents {
			return res, fmt.Errorf("sim: global event budget exceeded")
		}
		if err := releaseDue(); err != nil {
			return res, err
		}
		if len(ready) == 0 {
			nr, any := earliestRelease()
			if !any {
				return res, nil
			}
			now = nr
			continue
		}
		// Rank ready jobs; top min(len, m) run.
		sort.SliceStable(ready, func(a, b int) bool { return higherPriority(ready[a], ready[b]) })
		running := len(ready)
		if running > len(speeds) {
			running = len(speeds)
		}
		// Count preemptions and migrations against the previous slice.
		nowRunning := map[*job]bool{}
		for k := 0; k < running; k++ {
			j := ready[k]
			nowRunning[j] = true
			if last, seen := lastMachine[j]; seen && last != k {
				res.Migrations++
			}
			lastMachine[j] = k
		}
		for j := range prevRunning {
			if !nowRunning[j] && j.remaining.Sign() > 0 {
				res.Preemptions++
			}
		}
		prevRunning = nowRunning

		// Next event: earliest completion among running, or next release.
		var tNext rational.Rat
		haveNext := false
		for k := 0; k < running; k++ {
			rt, err := ready[k].remaining.Div(speeds[k])
			if err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			fin, err := now.Add(rt)
			if err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			if !haveNext || fin.Less(tNext) {
				tNext = fin
				haveNext = true
			}
		}
		if nr, any := earliestRelease(); any && (!haveNext || nr.Less(tNext)) {
			tNext = nr
			haveNext = true
		}
		if !haveNext {
			return res, fmt.Errorf("sim: stalled with %d ready jobs", len(ready))
		}
		// Advance all running jobs to tNext.
		delta, err := tNext.Sub(now)
		if err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
		for k := 0; k < running; k++ {
			work, err := delta.Mul(speeds[k])
			if err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			if ready[k].remaining, err = ready[k].remaining.Sub(work); err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
		}
		now = tNext
		// Complete finished jobs (remaining can dip to exactly 0; the
		// arithmetic is exact so no epsilon is needed).
		kept := ready[:0]
		for _, j := range ready {
			if j.remaining.Sign() <= 0 {
				res.JobsCompleted++
				if j.deadline.Less(now) {
					res.Misses = append(res.Misses, Miss{
						TaskIdx: j.taskIdx, Release: j.release, Deadline: j.deadline, Completion: now,
					})
				}
				delete(lastMachine, j)
				delete(prevRunning, j)
				continue
			}
			kept = append(kept, j)
		}
		ready = kept
	}
}
