package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

// Differential harness: the event-queue engine must be byte-identical to
// the preserved naive engine — results AND traces — across policies,
// arrival models, speeds (including fractional), and fuzzed task sets
// that mix feasible, exactly-critical and overloaded instances.

func randTaskSetSim(rng *rand.Rand, n int) task.Set {
	ts := make(task.Set, n)
	for i := range ts {
		p := int64(2 + rng.Intn(14))
		c := int64(1 + rng.Intn(int(p)))
		ts[i] = task.Task{WCET: c, Period: p}
	}
	return ts
}

func randSpeedSim(rng *rand.Rand) rational.Rat {
	speeds := []rational.Rat{
		rational.One(),
		rational.FromInt(2),
		rational.FromInt(3),
		rational.MustNew(1, 2),
		rational.MustNew(3, 4),
		rational.MustNew(5, 3),
	}
	return speeds[rng.Intn(len(speeds))]
}

func TestEngineDifferentialMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	policies := []Policy{PolicyEDF, PolicyRM}
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(8)
		ts := randTaskSetSim(rng, n)
		speed := randSpeedSim(rng)
		horizon := int64(20 + rng.Intn(100))
		var arrivals ArrivalModel
		if trial%2 == 1 {
			arrivals = JitteredArrivals{Seed: uint64(trial), MaxJitter: int64(1 + rng.Intn(5))}
		}
		for _, pol := range policies {
			want, wantTr, errN := SimulateMachineNaiveTraced(ts, speed, pol, arrivals, horizon)
			got, gotTr, errE := SimulateMachineTraced(ts, speed, pol, arrivals, horizon)
			if (errN == nil) != (errE == nil) {
				t.Fatalf("trial %d %v: error mismatch: naive=%v engine=%v", trial, pol, errN, errE)
			}
			if errN != nil {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d %v speed=%v horizon=%d: result mismatch\nnaive:  %+v\nengine: %+v\ntasks: %v",
					trial, pol, speed, horizon, want, got, ts)
			}
			if !reflect.DeepEqual(wantTr, gotTr) {
				t.Fatalf("trial %d %v: trace mismatch\nnaive:  %+v\nengine: %+v\ntasks: %v",
					trial, pol, wantTr, gotTr, ts)
			}
			// Untraced path agrees with itself too.
			gotU, err := SimulateMachine(ts, speed, pol, arrivals, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, gotU) {
				t.Fatalf("trial %d %v: untraced result mismatch", trial, pol)
			}
		}
	}
}

// TestEngineDifferentialReuse drives one Engine through many dissimilar
// back-to-back simulations: buffer reuse must never leak state from one
// run into the next.
func TestEngineDifferentialReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e := NewEngine()
	for trial := 0; trial < 200; trial++ {
		ts := randTaskSetSim(rng, 1+rng.Intn(10))
		speed := randSpeedSim(rng)
		horizon := int64(10 + rng.Intn(150))
		pol := Policy(rng.Intn(2))
		want, err := SimulateMachineNaive(ts, speed, pol, nil, horizon)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Simulate(ts, speed, pol, nil, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: reused engine diverged\nnaive:  %+v\nengine: %+v", trial, want, got)
		}
	}
}

// naivePartition replicates the pre-queue sequential partition replay on
// top of the preserved naive machine engine, as the differential
// reference for SimulatePartition.
func naivePartition(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64) (PlatformResult, error) {
	var pres PlatformResult
	alphaR, err := rational.FromFloat(alpha)
	if err != nil {
		return pres, err
	}
	sets := make([]task.Set, len(p))
	for i, j := range assignment {
		sets[j] = append(sets[j], ts[i])
	}
	pres.PerMachine = make([]MachineResult, len(p))
	for j := range p {
		speed, err := p[j].SpeedRat()
		if err != nil {
			return pres, err
		}
		if speed, err = speed.Mul(alphaR); err != nil {
			return pres, err
		}
		mr, err := SimulateMachineNaive(sets[j], speed, policy, PeriodicArrivals{}, horizon)
		if err != nil {
			return pres, err
		}
		pres.PerMachine[j] = mr
		pres.TotalMisses += len(mr.Misses)
		pres.TotalJobs += mr.JobsReleased
	}
	return pres, nil
}

func TestPartitionDifferentialAndWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		ts := randTaskSetSim(rng, n)
		plat := make(machine.Platform, m)
		for j := range plat {
			plat[j] = machine.Machine{Speed: []float64{1, 2, 0.5}[rng.Intn(3)]}
		}
		assignment := make([]int, n)
		for i := range assignment {
			assignment[i] = rng.Intn(m)
		}
		pol := Policy(rng.Intn(2))
		horizon := int64(20 + rng.Intn(80))

		want, err := naivePartition(ts, plat, assignment, pol, 1, horizon)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := SimulatePartitionOpts(ts, plat, assignment, pol, 1, horizon, PartitionOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d workers=%d: partition mismatch\nnaive: %+v\nqueue: %+v", trial, workers, want, got)
			}
		}
		// Traced output and jittered arrivals: bit-identical at every
		// worker count (reference = 1 worker).
		jitter := PartitionOptions{Arrivals: JitteredArrivals{Seed: uint64(trial), MaxJitter: 3}, Workers: 1}
		refJ, err := SimulatePartitionOpts(ts, plat, assignment, pol, 1, horizon, jitter)
		if err != nil {
			t.Fatal(err)
		}
		refRes, refTr, err := SimulatePartitionTracedOpts(ts, plat, assignment, pol, 1, horizon, PartitionOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			jitter.Workers = workers
			gotJ, err := SimulatePartitionOpts(ts, plat, assignment, pol, 1, horizon, jitter)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refJ, gotJ) {
				t.Fatalf("trial %d workers=%d: jittered partition not deterministic", trial, workers)
			}
			gotRes, gotTr, err := SimulatePartitionTracedOpts(ts, plat, assignment, pol, 1, horizon, PartitionOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refRes, gotRes) || !reflect.DeepEqual(refTr, gotTr) {
				t.Fatalf("trial %d workers=%d: traced partition not deterministic", trial, workers)
			}
		}
	}
}

// TestPartitionArrivalIndexRemap pins the input-index contract of
// PartitionOptions.Arrivals: a model keyed on task index must see the
// same indices whether a task shares its machine or not.
func TestPartitionArrivalIndexRemap(t *testing.T) {
	ts := task.Set{
		{WCET: 1, Period: 4},
		{WCET: 1, Period: 4},
		{WCET: 1, Period: 4},
	}
	plat := machine.New(1, 1, 1)
	arr := JitteredArrivals{Seed: 99, MaxJitter: 3}
	spread, err := SimulatePartitionOpts(ts, plat, []int{0, 1, 2}, PolicyEDF, 1, 40, PartitionOptions{Arrivals: arr})
	if err != nil {
		t.Fatal(err)
	}
	// All three tasks on one machine: per-task job counts must match the
	// spread run, because each task's arrival sequence depends only on its
	// input index, not on its machine or subset position.
	packed, err := SimulatePartitionOpts(ts, plat, []int{0, 0, 0}, PolicyEDF, 1, 40, PartitionOptions{Arrivals: arr})
	if err != nil {
		t.Fatal(err)
	}
	if spread.TotalJobs != packed.TotalJobs {
		t.Fatalf("arrival sequences depend on partition: spread released %d jobs, packed %d",
			spread.TotalJobs, packed.TotalJobs)
	}
}

// TestEngineZeroAllocSteadyState asserts the headline property: a reused
// Engine performs zero allocations per simulation once its buffers are
// warm (miss-free instance, untraced path).
func TestEngineZeroAllocSteadyState(t *testing.T) {
	ts := task.Set{
		{WCET: 1, Period: 2},
		{WCET: 1, Period: 3},
		{WCET: 1, Period: 6},
	}
	for _, pol := range []Policy{PolicyEDF, PolicyRM} {
		e := NewEngine()
		run := func() {
			res, err := e.Simulate(ts, rational.FromInt(2), pol, nil, 600)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Misses) != 0 {
				t.Fatal("instance must be miss-free for the zero-alloc check")
			}
		}
		run() // warm the arena and heaps
		if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
			t.Errorf("%v: %v allocs per steady-state Simulate, want 0", pol, allocs)
		}
	}
}
