package sim

import (
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
)

// Metamorphic invariants of the simulator, checked over fuzzed instances
// for both policies and both arrival models. These hold for ANY correct
// engine — they don't encode a specific schedule, only conservation laws:
//
//   - the trace accounts for exactly the busy time the result reports;
//   - trace segments are time-ordered, non-overlapping and non-empty;
//   - every released job completes by simulation end (the loop runs past
//     the horizon until the backlog drains), so the release/completion
//     counters balance;
//   - under periodic arrivals the release count is exactly
//     Σ_i ⌈horizon / P_i⌉.

func checkMachineInvariants(t *testing.T, label string, res MachineResult, tr *Trace) {
	t.Helper()
	busy, err := tr.BusyTime()
	if err != nil {
		t.Fatalf("%s: trace busy time: %v", label, err)
	}
	if !busy.Equal(res.BusyTime) {
		t.Fatalf("%s: trace busy %v != result busy %v", label, busy, res.BusyTime)
	}
	for k, s := range tr.Segments {
		if s.Start.Cmp(s.End) >= 0 {
			t.Fatalf("%s: segment %d empty or reversed: [%v, %v)", label, k, s.Start, s.End)
		}
		if k > 0 && tr.Segments[k-1].End.Cmp(s.Start) > 0 {
			t.Fatalf("%s: segments %d and %d overlap: [..., %v) then [%v, ...)",
				label, k-1, k, tr.Segments[k-1].End, s.Start)
		}
	}
	if res.JobsReleased != res.JobsCompleted {
		t.Fatalf("%s: %d jobs released but %d completed", label, res.JobsReleased, res.JobsCompleted)
	}
	if res.BusyTime.Cmp(res.Makespan) > 0 {
		t.Fatalf("%s: busy time %v exceeds makespan %v", label, res.BusyTime, res.Makespan)
	}
}

func TestMachineMetamorphicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6174))
	for trial := 0; trial < 250; trial++ {
		ts := randTaskSetSim(rng, 1+rng.Intn(8))
		speed := randSpeedSim(rng)
		horizon := int64(10 + rng.Intn(120))
		var arrivals ArrivalModel
		if trial%2 == 1 {
			arrivals = JitteredArrivals{Seed: uint64(trial) * 77, MaxJitter: int64(1 + rng.Intn(4))}
		}
		for _, pol := range []Policy{PolicyEDF, PolicyRM} {
			res, tr, err := SimulateMachineTraced(ts, speed, pol, arrivals, horizon)
			if err != nil {
				t.Fatal(err)
			}
			checkMachineInvariants(t, pol.String(), res, tr)
			if arrivals == nil {
				var want int64
				for _, tk := range ts {
					want += (horizon + tk.Period - 1) / tk.Period // ⌈horizon/P⌉
				}
				if res.JobsReleased != want {
					t.Fatalf("trial %d %v: released %d jobs, periodic pattern predicts %d",
						trial, pol, res.JobsReleased, want)
				}
			}
		}
	}
}

func TestPartitionMetamorphicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4104))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		ts := randTaskSetSim(rng, n)
		plat := make(machine.Platform, m)
		for j := range plat {
			plat[j] = machine.Machine{Speed: []float64{1, 2, 0.5}[rng.Intn(3)]}
		}
		assignment := make([]int, n)
		for i := range assignment {
			assignment[i] = rng.Intn(m)
		}
		pol := Policy(rng.Intn(2))
		horizon := int64(20 + rng.Intn(60))
		pres, traces, err := SimulatePartitionTraced(ts, plat, assignment, pol, 1, horizon)
		if err != nil {
			t.Fatal(err)
		}
		var jobs int64
		misses := 0
		for j := range plat {
			checkMachineInvariants(t, pol.String(), pres.PerMachine[j], traces[j])
			jobs += pres.PerMachine[j].JobsReleased
			misses += len(pres.PerMachine[j].Misses)
			// Trace task indices refer to the full input set and must be
			// tasks actually assigned to this machine.
			for _, s := range traces[j].Segments {
				if s.TaskIdx < 0 || s.TaskIdx >= n {
					t.Fatalf("machine %d trace references task %d outside the input set", j, s.TaskIdx)
				}
				if assignment[s.TaskIdx] != j {
					t.Fatalf("machine %d trace references task %d assigned to machine %d",
						j, s.TaskIdx, assignment[s.TaskIdx])
				}
			}
		}
		if jobs != pres.TotalJobs {
			t.Fatalf("TotalJobs %d != per-machine sum %d", pres.TotalJobs, jobs)
		}
		if misses != pres.TotalMisses {
			t.Fatalf("TotalMisses %d != per-machine sum %d", pres.TotalMisses, misses)
		}
	}
}

// TestReducedDensityNeverHurts is the metamorphic relation behind the E9
// jitter check: thinning the arrival sequence of a miss-free instance
// (jitter only delays releases) must keep it miss-free under both
// policies — sporadic sets are hardest at the synchronous periodic
// pattern.
func TestReducedDensityNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 150; trial++ {
		ts := randTaskSetSim(rng, 1+rng.Intn(5))
		speed := rational.FromInt(1 + int64(rng.Intn(3)))
		horizon := int64(30 + rng.Intn(90))
		for _, pol := range []Policy{PolicyEDF, PolicyRM} {
			dense, err := SimulateMachine(ts, speed, pol, nil, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if len(dense.Misses) != 0 {
				continue // only the miss-free premise is covered by the relation
			}
			sparse, err := SimulateMachine(ts, speed, pol,
				JitteredArrivals{Seed: uint64(trial), MaxJitter: int64(1 + rng.Intn(6))}, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if len(sparse.Misses) != 0 {
				t.Fatalf("trial %d %v: periodic run was miss-free but jittered run missed: %v",
					trial, pol, sparse.Misses[0])
			}
			if sparse.JobsReleased > dense.JobsReleased {
				t.Fatalf("trial %d %v: jitter released more jobs (%d) than periodic (%d)",
					trial, pol, sparse.JobsReleased, dense.JobsReleased)
			}
		}
	}
}
