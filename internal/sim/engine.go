package sim

import (
	"context"
	"fmt"
	"sort"

	"partfeas/internal/faultinject"
	"partfeas/internal/pipeline"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

// cancelCheckEvents is how many scheduling events pass between
// cooperative context checks in the engine loop. It bounds cancellation
// latency to a few hundred O(log n) events (microseconds) while keeping
// the check invisible next to the per-event rational arithmetic.
const cancelCheckEvents = 256

// Engine is the reusable event-queue simulator core behind
// SimulateMachine. Per scheduling event it does O(log n) work — a release
// min-heap keyed on each task's next release replaces the naive engine's
// O(n) due/earliest scans, and a policy-keyed ready heap replaces the
// O(|ready|) priority scan and splice — while producing byte-identical
// MachineResult and Trace output (the differential tests in
// engine_test.go hold it to the preserved naive engine).
//
// All working storage (job arena, both heaps, RM rank buffers, trace
// scratch) is owned by the Engine and reused across calls, so repeat
// Simulate calls on same-shaped inputs allocate nothing in steady state.
// An Engine is not safe for concurrent use; the package-level entry
// points draw Engines from an internal pool, and SimulatePartition gives
// each worker its own.
type Engine struct {
	policy Policy
	traced bool

	jobs  []job      // arena; the ready heap refers to jobs by index
	free  []int32    // arena slots of completed jobs, ready for reuse
	ready []int32    // binary heap of released unfinished jobs
	rel   []relEntry // binary heap of per-task next releases
	segs  []Segment  // trace scratch for the traced path

	rank   []int // RM static priorities (rank[i] of task i; 0 = highest)
	rmIdx  []int // scratch permutation for rank computation
	sorter rmSorter

	ctx context.Context // per-run cancellation; nil = never cancelled
}

// NewEngine returns an empty Engine; buffers grow on first use.
func NewEngine() *Engine { return &Engine{} }

// Simulate runs one machine of the given speed over all jobs released in
// [0, horizon) and until every released job completes, exactly like
// SimulateMachine (which delegates here).
func (e *Engine) Simulate(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, error) {
	return e.SimulateCtx(nil, ts, speed, policy, arrivals, horizon)
}

// SimulateCtx is Simulate with cooperative cancellation: the event loop
// polls ctx every cancelCheckEvents scheduling events and returns a
// *pipeline.Error wrapping the ctx cause when it fires. A nil ctx means
// no cancellation.
func (e *Engine) SimulateCtx(ctx context.Context, ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, error) {
	e.ctx = ctx
	defer func() { e.ctx = nil }()
	return e.run(ts, speed, policy, arrivals, horizon, false)
}

// SimulateTraced is Simulate plus the execution trace. The returned Trace
// is freshly sized to its exact segment count and owned by the caller;
// the engine's working segment buffer is retained for reuse.
func (e *Engine) SimulateTraced(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, *Trace, error) {
	return e.SimulateCtxTraced(nil, ts, speed, policy, arrivals, horizon)
}

// SimulateCtxTraced is SimulateTraced with cooperative cancellation,
// mirroring SimulateCtx.
func (e *Engine) SimulateCtxTraced(ctx context.Context, ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, *Trace, error) {
	e.ctx = ctx
	defer func() { e.ctx = nil }()
	res, err := e.run(ts, speed, policy, arrivals, horizon, true)
	tr := &Trace{}
	if len(e.segs) > 0 {
		tr.Segments = make([]Segment, len(e.segs))
		copy(tr.Segments, e.segs)
	}
	return res, tr, err
}

func (e *Engine) run(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64, traced bool) (MachineResult, error) {
	var res MachineResult
	res.BusyTime = rational.Zero()
	res.Makespan = rational.Zero()
	e.segs = e.segs[:0]
	if len(ts) == 0 {
		return res, nil
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
	}
	if speed.Sign() <= 0 {
		return res, fmt.Errorf("sim: speed %v must be positive", speed)
	}
	if horizon <= 0 {
		return res, ErrHorizon
	}
	if arrivals == nil {
		arrivals = PeriodicArrivals{}
	}
	if policy != PolicyEDF && policy != PolicyRM {
		return res, fmt.Errorf("sim: unknown policy %d", int(policy))
	}

	e.policy = policy
	e.traced = traced
	horizonR := rational.FromInt(horizon)
	if policy == PolicyRM {
		e.computeRanks(ts)
	}

	e.jobs = e.jobs[:0]
	e.free = e.free[:0]
	e.ready = e.ready[:0]
	e.rel = e.rel[:0]
	for i, t := range ts {
		if first := arrivals.First(i, t); first.Less(horizonR) {
			e.relPush(relEntry{at: first, taskIdx: i})
		}
	}

	now := rational.Zero()
	running := int32(-1) // arena index of the job that ran last slice

	for events := 0; ; events++ {
		if events > maxEvents {
			return res, fmt.Errorf("sim: event budget exceeded (horizon %d, %d tasks)", horizon, len(ts))
		}
		faultinject.Hit(faultinject.SiteSimEvent, int64(events))
		if e.ctx != nil && events%cancelCheckEvents == 0 {
			if err := e.ctx.Err(); err != nil {
				return res, pipeline.New(pipeline.StageSimulate, "", err)
			}
		}
		// Release everything due by now. Popping the release heap yields
		// due jobs in (time, task index) order; each released task's next
		// release re-enters the heap unless it falls past the horizon.
		for len(e.rel) > 0 && e.rel[0].at.LessEq(now) {
			ent := e.relPop()
			i := ent.taskIdx
			t := ts[i]
			dl, err := ent.at.Add(rational.FromInt(t.Period))
			if err != nil {
				return res, fmt.Errorf("sim: deadline of task %d: %w", i, err)
			}
			idx := e.jobAlloc()
			e.jobs[idx] = job{taskIdx: i, release: ent.at, deadline: dl, remaining: rational.FromInt(t.WCET)}
			e.readyPush(idx)
			res.JobsReleased++
			nr, err := arrivals.Next(i, t, ent.at)
			if err != nil {
				return res, err
			}
			if !ent.at.Less(nr) {
				return res, fmt.Errorf("sim: arrival model violated sporadic constraint for task %d: %v -> %v", i, ent.at, nr)
			}
			if nr.Less(horizonR) {
				e.relPush(relEntry{at: nr, taskIdx: i})
			}
		}
		if len(e.ready) == 0 {
			if len(e.rel) == 0 {
				return res, nil // all released jobs done, no more releases
			}
			now = e.rel[0].at
			continue
		}
		// The highest-priority ready job is the heap root; job priorities
		// are fixed at release, so running a slice never reorders the heap.
		jIdx := e.ready[0]
		j := &e.jobs[jIdx]
		if running >= 0 && running != jIdx && e.jobs[running].remaining.Sign() > 0 {
			res.Preemptions++
		}
		running = jIdx

		// It would finish at now + remaining/speed; a release before that
		// preempts (or at least re-evaluates priority).
		runTime, err := j.remaining.Div(speed)
		if err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
		finish, err := now.Add(runTime)
		if err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
		if len(e.rel) > 0 && e.rel[0].at.Less(finish) {
			// Run until the release, then loop to re-evaluate.
			nr := e.rel[0].at
			delta, err := nr.Sub(now)
			if err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			work, err := delta.Mul(speed)
			if err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			if j.remaining, err = j.remaining.Sub(work); err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			if res.BusyTime, err = res.BusyTime.Add(delta); err != nil {
				return res, fmt.Errorf("sim: %w", err)
			}
			e.addSeg(j.taskIdx, now, nr)
			now = nr
			continue
		}
		// Job completes.
		if res.BusyTime, err = res.BusyTime.Add(runTime); err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
		e.addSeg(j.taskIdx, now, finish)
		now = finish
		res.JobsCompleted++
		res.Makespan = rational.Max(res.Makespan, now)
		if j.deadline.Less(now) {
			res.Misses = append(res.Misses, Miss{
				TaskIdx: j.taskIdx, Release: j.release, Deadline: j.deadline, Completion: now,
			})
		}
		e.readyPop()
		e.jobFree(jIdx)
		running = -1
	}
}

// addSeg appends a trace segment to the engine scratch, merging with the
// previous one when the same task continues without a gap — the same
// rule as Trace.add, so traced output stays byte-identical.
func (e *Engine) addSeg(taskIdx int, start, end rational.Rat) {
	if !e.traced || start.Cmp(end) >= 0 {
		return
	}
	if n := len(e.segs); n > 0 {
		last := &e.segs[n-1]
		if last.TaskIdx == taskIdx && last.End.Equal(start) {
			last.End = end
			return
		}
	}
	e.segs = append(e.segs, Segment{TaskIdx: taskIdx, Start: start, End: end})
}

// computeRanks fills e.rank with rate-monotonic priorities, reusing the
// engine's buffers. The comparator (period, WCET, input index) is a total
// order, so plain sort.Sort reproduces rmRanks' sort.SliceStable result
// without the reflection-based swapper's allocations.
func (e *Engine) computeRanks(ts task.Set) {
	n := len(ts)
	e.rank = growInts(e.rank, n)
	e.rmIdx = growInts(e.rmIdx, n)
	for i := 0; i < n; i++ {
		e.rmIdx[i] = i
	}
	e.sorter.ts = ts
	e.sorter.idx = e.rmIdx
	sort.Sort(&e.sorter)
	e.sorter.ts = nil // don't retain the caller's set between runs
	for r, i := range e.rmIdx {
		e.rank[i] = r
	}
}

// growInts resizes s to length n, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// rmSorter sorts a task-index permutation by rate-monotonic priority.
type rmSorter struct {
	ts  task.Set
	idx []int
}

func (s *rmSorter) Len() int      { return len(s.idx) }
func (s *rmSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *rmSorter) Less(a, b int) bool {
	ta, tb := s.ts[s.idx[a]], s.ts[s.idx[b]]
	if ta.Period != tb.Period {
		return ta.Period < tb.Period
	}
	if ta.WCET != tb.WCET {
		return ta.WCET < tb.WCET
	}
	return s.idx[a] < s.idx[b]
}
