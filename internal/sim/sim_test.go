package sim

import (
	"math/rand"
	"strings"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/rational"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

func one() rational.Rat { return rational.One() }

func TestPolicyString(t *testing.T) {
	if PolicyEDF.String() != "EDF" || PolicyRM.String() != "RM" {
		t.Error("policy strings")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy string")
	}
}

func TestSimulateEmptySet(t *testing.T) {
	res, err := SimulateMachine(task.Set{}, one(), PolicyEDF, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsReleased != 0 || len(res.Misses) != 0 {
		t.Errorf("empty set result: %+v", res)
	}
}

func TestSimulateValidation(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 2}}
	if _, err := SimulateMachine(ts, rational.Zero(), PolicyEDF, nil, 10); err == nil {
		t.Error("zero speed should fail")
	}
	if _, err := SimulateMachine(ts, one(), PolicyEDF, nil, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := SimulateMachine(ts, one(), Policy(9), nil, 10); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := SimulateMachine(task.Set{{WCET: 0, Period: 2}}, one(), PolicyEDF, nil, 10); err == nil {
		t.Error("invalid task should fail")
	}
}

func TestSingleTaskPeriodic(t *testing.T) {
	ts := task.Set{{Name: "t", WCET: 1, Period: 2}}
	res, err := SimulateMachine(ts, one(), PolicyEDF, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsReleased != 5 || res.JobsCompleted != 5 {
		t.Errorf("jobs = %d/%d, want 5/5", res.JobsReleased, res.JobsCompleted)
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
	if !res.BusyTime.Equal(rational.FromInt(5)) {
		t.Errorf("busy = %v, want 5", res.BusyTime)
	}
	// Last job releases at 8, runs 1 → makespan 9.
	if !res.Makespan.Equal(rational.FromInt(9)) {
		t.Errorf("makespan = %v, want 9", res.Makespan)
	}
}

func TestOverloadMisses(t *testing.T) {
	ts := task.Set{{WCET: 3, Period: 2}}
	res, err := SimulateMachine(ts, one(), PolicyEDF, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) == 0 {
		t.Fatal("overloaded task produced no misses")
	}
	if res.Misses[0].TaskIdx != 0 || res.Misses[0].Unfinished {
		t.Errorf("first miss: %+v", res.Misses[0])
	}
	if !strings.Contains(res.Misses[0].String(), "missed deadline") {
		t.Errorf("miss string: %q", res.Misses[0])
	}
}

func TestSpeedScaling(t *testing.T) {
	// WCET 2 on a speed-2 machine takes 1 time unit.
	ts := task.Set{{WCET: 2, Period: 2}}
	res, err := SimulateMachine(ts, rational.FromInt(2), PolicyEDF, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
	if !res.BusyTime.Equal(rational.FromInt(2)) {
		t.Errorf("busy = %v, want 2 (two jobs × 1)", res.BusyTime)
	}
	// Fractional speed: same task on speed 1/2 takes 4 > deadline 2.
	res, err = SimulateMachine(ts, rational.MustNew(1, 2), PolicyEDF, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) == 0 {
		t.Error("half-speed machine should miss")
	}
}

func TestEDFFullUtilizationNoMiss(t *testing.T) {
	// u = 1/2 + 1/3 + 1/6 = 1 exactly; EDF on speed 1 must be miss-free
	// over the hyperperiod (and beyond: we simulate all released jobs).
	ts := task.Set{
		{WCET: 1, Period: 2},
		{WCET: 1, Period: 3},
		{WCET: 1, Period: 6},
	}
	hp, err := ts.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateMachine(ts, one(), PolicyEDF, nil, 10*hp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("EDF at U=1 missed: %v", res.Misses[0])
	}
	// Fully busy: busy time equals total demand.
	wantBusy := rational.FromInt(10*hp/2 + 10*hp/3 + 10*hp/6)
	if !res.BusyTime.Equal(wantBusy) {
		t.Errorf("busy = %v, want %v", res.BusyTime, wantBusy)
	}
}

func TestRMClassicMiss(t *testing.T) {
	// τ1=(2,5), τ2=(4,7): EDF schedulable (U≈0.971 ≤ 1) but RM misses —
	// response time of τ2 is 4 + 2·⌈R/5⌉ which exceeds 7.
	ts := task.Set{
		{WCET: 2, Period: 5},
		{WCET: 4, Period: 7},
	}
	edf, err := SimulateMachine(ts, one(), PolicyEDF, nil, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(edf.Misses) != 0 {
		t.Errorf("EDF missed: %v", edf.Misses)
	}
	rm, err := SimulateMachine(ts, one(), PolicyRM, nil, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Misses) == 0 {
		t.Error("RM should miss on the classic (2,5),(4,7) pair")
	}
	// Consistency with analysis.
	ok, err := sched.RMSFeasibleExact(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("RTA disagrees with the known-miss example")
	}
}

func TestPreemptionCounting(t *testing.T) {
	// High-rate task preempts a long low-rate job under RM.
	ts := task.Set{
		{WCET: 1, Period: 4},
		{WCET: 5, Period: 16},
	}
	res, err := SimulateMachine(ts, one(), PolicyRM, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Error("expected preemptions")
	}
	if len(res.Misses) != 0 {
		t.Errorf("misses: %v", res.Misses)
	}
}

// Simulation agrees with exact RM response-time analysis: zero misses iff
// RTA says schedulable (synchronous periodic pattern is the critical
// instant, which RTA models exactly).
func TestRMSimAgreesWithRTA(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		ts := make(task.Set, n)
		for i := range ts {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(int(p)))
			ts[i] = task.Task{WCET: c, Period: p}
		}
		hp, err := ts.Hyperperiod()
		if err != nil {
			continue
		}
		res, err := SimulateMachine(ts, one(), PolicyRM, nil, hp)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := sched.RMSFeasibleExact(ts, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (len(res.Misses) == 0) {
			t.Fatalf("trial %d: RTA=%v, sim misses=%d for %v", trial, ok, len(res.Misses), ts)
		}
	}
}

// Simulation agrees with the EDF utilization bound.
func TestEDFSimAgreesWithUtilizationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		ts := make(task.Set, n)
		for i := range ts {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(int(p)))
			ts[i] = task.Task{WCET: c, Period: p}
		}
		hp, err := ts.Hyperperiod()
		if err != nil {
			continue
		}
		res, err := SimulateMachine(ts, one(), PolicyEDF, nil, hp)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ts.TotalUtilizationRat()
		if err != nil {
			t.Fatal(err)
		}
		feasible := exact.LessEq(rational.One())
		if feasible != (len(res.Misses) == 0) {
			t.Fatalf("trial %d: U=%v, sim misses=%d for %v", trial, exact, len(res.Misses), ts)
		}
	}
}

func TestJitteredArrivalsSporadic(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 3}, {WCET: 2, Period: 5}}
	arr := JitteredArrivals{Seed: 7, MaxJitter: 4}
	res, err := SimulateMachine(ts, one(), PolicyEDF, arr, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Feasible set stays feasible under sparser (jittered) arrivals.
	if len(res.Misses) != 0 {
		t.Errorf("jittered misses: %v", res.Misses)
	}
	// Fewer or equal jobs than the periodic pattern releases.
	periodic, err := SimulateMachine(ts, one(), PolicyEDF, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsReleased > periodic.JobsReleased {
		t.Errorf("jittered released %d > periodic %d", res.JobsReleased, periodic.JobsReleased)
	}
}

func TestJitteredDeterministic(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 3}}
	arr := JitteredArrivals{Seed: 42, MaxJitter: 3}
	a, err := SimulateMachine(ts, one(), PolicyEDF, arr, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateMachine(ts, one(), PolicyEDF, arr, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a.JobsReleased != b.JobsReleased || !a.BusyTime.Equal(b.BusyTime) {
		t.Error("jittered arrivals not deterministic")
	}
}

type badArrivals struct{}

func (badArrivals) First(int, task.Task) rational.Rat { return rational.Zero() }
func (badArrivals) Next(_ int, _ task.Task, prev rational.Rat) (rational.Rat, error) {
	return prev, nil // violates sporadic separation
}

func TestArrivalModelViolationDetected(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 2}}
	if _, err := SimulateMachine(ts, one(), PolicyEDF, badArrivals{}, 10); err == nil {
		t.Error("sporadic violation not detected")
	}
}

func TestSimulatePartitionEndToEnd(t *testing.T) {
	ts := task.Set{
		{Name: "a", WCET: 1, Period: 2},
		{Name: "b", WCET: 1, Period: 2},
		{Name: "c", WCET: 2, Period: 4},
	}
	p := machine.New(1, 1)
	res, err := partition.Partition(ts, p, partition.Paper(partition.EDFAdmission{}, 1))
	if err != nil || !res.Feasible {
		t.Fatalf("partition failed: %+v (%v)", res, err)
	}
	pres, err := SimulatePartition(ts, p, res.Assignment, PolicyEDF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TotalMisses != 0 {
		t.Errorf("accepted partition missed deadlines: %+v", pres)
	}
	if pres.TotalJobs == 0 {
		t.Error("no jobs simulated")
	}
}

func TestSimulatePartitionValidation(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 2}}
	p := machine.New(1)
	if _, err := SimulatePartition(task.Set{}, p, nil, PolicyEDF, 1, 0); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := SimulatePartition(ts, machine.Platform{}, []int{0}, PolicyEDF, 1, 0); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := SimulatePartition(ts, p, []int{}, PolicyEDF, 1, 0); err == nil {
		t.Error("assignment length mismatch should fail")
	}
	if _, err := SimulatePartition(ts, p, []int{5}, PolicyEDF, 1, 0); err == nil {
		t.Error("out-of-range machine should fail")
	}
	if _, err := SimulatePartition(ts, p, []int{0}, PolicyEDF, -1, 0); err == nil {
		t.Error("negative alpha should fail")
	}
}

func TestSimulatePartitionWithAlpha(t *testing.T) {
	// Three 2/3 tasks on two unit machines at α = 1.5: partition exists
	// (two tasks = 4/3 ≤ 1.5) and the α-scaled simulation is miss-free.
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 2, Period: 3}, {WCET: 2, Period: 3},
	}
	p := machine.New(1, 1)
	res, err := partition.Partition(ts, p, partition.Paper(partition.EDFAdmission{}, 1.5))
	if err != nil || !res.Feasible {
		t.Fatalf("partition at α=1.5: %+v (%v)", res, err)
	}
	pres, err := SimulatePartition(ts, p, res.Assignment, PolicyEDF, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TotalMisses != 0 {
		t.Errorf("α-scaled simulation missed: %+v", pres)
	}
	// Without augmentation the same assignment overloads one machine.
	pres, err = SimulatePartition(ts, p, res.Assignment, PolicyEDF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TotalMisses == 0 {
		t.Error("unaugmented overloaded machine should miss")
	}
}

func BenchmarkSimulateMachineEDF(b *testing.B) {
	ts := task.Set{
		{WCET: 1, Period: 4}, {WCET: 2, Period: 6}, {WCET: 3, Period: 12},
		{WCET: 1, Period: 8}, {WCET: 2, Period: 24},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateMachine(ts, one(), PolicyEDF, nil, 24*20); err != nil {
			b.Fatal(err)
		}
	}
}
