package sim

import (
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

func TestGlobalValidation(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 2}}
	p := machine.New(1)
	if _, err := SimulateGlobal(task.Set{}, p, PolicyEDF, 10); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := SimulateGlobal(ts, machine.Platform{}, PolicyEDF, 10); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := SimulateGlobal(ts, p, PolicyEDF, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := SimulateGlobal(ts, p, Policy(9), 10); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestGlobalSingleMachineMatchesUniproc(t *testing.T) {
	// On one machine, global EDF is just EDF: compare against
	// SimulateMachine on random sets.
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		ts := make(task.Set, n)
		for i := range ts {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(int(p)))
			ts[i] = task.Task{WCET: c, Period: p}
		}
		hp, err := ts.Hyperperiod()
		if err != nil {
			continue
		}
		g, err := SimulateGlobal(ts, machine.New(1), PolicyEDF, hp)
		if err != nil {
			t.Fatal(err)
		}
		u, err := SimulateMachine(ts, rational.One(), PolicyEDF, nil, hp)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Misses) != len(u.Misses) || g.JobsReleased != u.JobsReleased {
			t.Fatalf("trial %d: global %d misses/%d jobs, uniproc %d/%d for %v",
				trial, len(g.Misses), g.JobsReleased, len(u.Misses), u.JobsReleased, ts)
		}
	}
}

func TestGlobalEDFNotOptimal(t *testing.T) {
	// Three 2/3 tasks with identical periods on two unit machines: the
	// fluid/open-shop schedule succeeds (see internal/openshop), but
	// global EDF serializes the third job behind the first two and
	// misses — global EDF is not optimal even where migration would
	// suffice.
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 2, Period: 3}, {WCET: 2, Period: 3},
	}
	res, err := SimulateGlobal(ts, machine.New(1, 1), PolicyEDF, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) == 0 {
		t.Error("global EDF should miss on three simultaneous 2/3 tasks")
	}
}

func TestGlobalMigrationBeatsPartitioning(t *testing.T) {
	// Staggered periods: utilizations {2/3, 2/3, 1/2} cannot be
	// partitioned onto two unit machines (any pairing exceeds 1), but
	// global EDF schedules them, migrating jobs between the machines.
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 2, Period: 3}, {WCET: 2, Period: 4},
	}
	res, err := SimulateGlobal(ts, machine.New(1, 1), PolicyEDF, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("global EDF missed on the migration instance: %v", res.Misses[0])
	}
	if res.Migrations == 0 {
		t.Error("expected migrations on the unpartitionable instance")
	}
}

func TestGlobalDhallEffect(t *testing.T) {
	// The Dhall effect: m light short-period tasks + one heavy
	// long-period task. Global EDF runs the light jobs first and the
	// heavy job misses, although a partitioned scheduler (heavy task
	// alone on one machine) succeeds easily.
	//
	// m = 2: tasks (1, 5), (1, 5) light; (9, 10) heavy. U ≈ 0.2+0.2+0.9.
	ts := task.Set{
		{Name: "light1", WCET: 1, Period: 5},
		{Name: "light2", WCET: 1, Period: 5},
		{Name: "heavy", WCET: 9, Period: 10},
	}
	p := machine.New(1, 1)
	g, err := SimulateGlobal(ts, p, PolicyEDF, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Misses) == 0 {
		t.Error("expected the Dhall-effect miss under global EDF")
	}
	// Partitioned: heavy alone on m0, lights on m1 — feasible
	// (0.9 <= 1, 0.4 <= 1).
	pr, err := SimulatePartition(ts, p, []int{1, 1, 0}, PolicyEDF, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pr.TotalMisses != 0 {
		t.Errorf("partitioned schedule should succeed: %+v", pr)
	}
}

func TestGlobalFasterMachinesPreferred(t *testing.T) {
	// One heavy task on {fast, slow}: it must run on the fast machine and
	// meet its deadline (w = 1.5 needs speed 2).
	ts := task.Set{{WCET: 3, Period: 2}}
	res, err := SimulateGlobal(ts, machine.New(0.5, 2), PolicyEDF, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("heavy task should fit the fast machine: %v", res.Misses)
	}
}

func TestGlobalRMPolicy(t *testing.T) {
	ts := task.Set{
		{WCET: 1, Period: 2},
		{WCET: 1, Period: 3},
		{WCET: 2, Period: 6},
	}
	res, err := SimulateGlobal(ts, machine.New(1, 1), PolicyRM, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Misses) != 0 {
		t.Errorf("comfortable RM set missed: %v", res.Misses)
	}
	if res.JobsCompleted != res.JobsReleased {
		t.Errorf("completed %d of %d", res.JobsCompleted, res.JobsReleased)
	}
}

func BenchmarkSimulateGlobal(b *testing.B) {
	ts := task.Set{
		{WCET: 1, Period: 4}, {WCET: 2, Period: 6}, {WCET: 3, Period: 12},
		{WCET: 1, Period: 8}, {WCET: 2, Period: 24}, {WCET: 5, Period: 24},
	}
	p := machine.New(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateGlobal(ts, p, PolicyEDF, 24*10); err != nil {
			b.Fatal(err)
		}
	}
}
