// Package sim is a discrete-event simulator for preemptive uniprocessor
// and partitioned multiprocessor scheduling of sporadic task sets.
//
// It is the ground truth behind experiment E9: when the paper's test
// accepts a task set, the witness partition is replayed here — synchronous
// periodic releases (the worst case for implicit-deadline sporadic tasks
// under both EDF and fixed priorities), one hyperperiod of releases, exact
// rational event times — and must produce zero deadline misses.
//
// All timestamps, remaining-work amounts and speeds are exact rationals
// (internal/rational), so a "miss by 10⁻¹⁵" float artifact cannot occur:
// either the schedule fits or it does not.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

// Policy selects the uniprocessor scheduling discipline.
type Policy int

const (
	// PolicyEDF schedules the ready job with the earliest absolute
	// deadline (ties by lower task index).
	PolicyEDF Policy = iota
	// PolicyRM schedules by rate-monotonic static priority: smaller
	// period first (ties by smaller WCET, then lower task index).
	PolicyRM
)

func (p Policy) String() string {
	switch p {
	case PolicyEDF:
		return "EDF"
	case PolicyRM:
		return "RM"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ArrivalModel produces each task's next release time. Implementations
// must satisfy the sporadic constraint: next ≥ prev + period.
type ArrivalModel interface {
	// First returns the release time of the task's first job.
	First(taskIdx int, t task.Task) rational.Rat
	// Next returns the release following a release at prev.
	Next(taskIdx int, t task.Task, prev rational.Rat) (rational.Rat, error)
}

// PeriodicArrivals releases every task at 0, P, 2P, … — the synchronous
// periodic pattern, which is the densest legal sporadic arrival sequence
// and the worst case for implicit-deadline schedulability.
type PeriodicArrivals struct{}

// First implements ArrivalModel.
func (PeriodicArrivals) First(int, task.Task) rational.Rat { return rational.Zero() }

// Next implements ArrivalModel.
func (PeriodicArrivals) Next(_ int, t task.Task, prev rational.Rat) (rational.Rat, error) {
	return prev.Add(rational.FromInt(t.Period))
}

// JitteredArrivals adds a deterministic pseudo-random integer gap in
// [0, MaxJitter] after each period, exercising genuinely sporadic (less
// dense) arrival sequences. The zero value (MaxJitter 0) degenerates to
// periodic arrivals.
type JitteredArrivals struct {
	Seed      uint64
	MaxJitter int64
}

// First implements ArrivalModel.
func (JitteredArrivals) First(int, task.Task) rational.Rat { return rational.Zero() }

// Next implements ArrivalModel.
func (j JitteredArrivals) Next(taskIdx int, t task.Task, prev rational.Rat) (rational.Rat, error) {
	gap := t.Period
	if j.MaxJitter > 0 {
		// splitmix64 keyed by seed, task and the previous release keeps
		// the model pure (same inputs, same arrival sequence).
		h := splitmix64(j.Seed ^ uint64(taskIdx)*0x9e3779b97f4a7c15 ^ uint64(prev.Num())<<1 ^ uint64(prev.Den()))
		gap += int64(h % uint64(j.MaxJitter+1))
	}
	return prev.Add(rational.FromInt(gap))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Miss records one deadline violation.
type Miss struct {
	// TaskIdx indexes the simulated task set.
	TaskIdx int
	// Release and Deadline are the job's absolute release and deadline.
	Release  rational.Rat
	Deadline rational.Rat
	// Completion is when the job actually finished; jobs still unfinished
	// at simulation end report their (past-due) deadline with Completion
	// unset and Unfinished true.
	Completion rational.Rat
	Unfinished bool
}

func (m Miss) String() string {
	if m.Unfinished {
		return fmt.Sprintf("task %d released %v missed deadline %v (unfinished)", m.TaskIdx, m.Release, m.Deadline)
	}
	return fmt.Sprintf("task %d released %v missed deadline %v (finished %v)", m.TaskIdx, m.Release, m.Deadline, m.Completion)
}

// MachineResult summarizes one uniprocessor simulation.
type MachineResult struct {
	// Misses lists deadline violations in completion order.
	Misses []Miss
	// JobsReleased and JobsCompleted count jobs within the horizon.
	JobsReleased  int64
	JobsCompleted int64
	// BusyTime is total non-idle time.
	BusyTime rational.Rat
	// Makespan is the completion time of the last job.
	Makespan rational.Rat
	// Preemptions counts preemption events (a running job displaced by a
	// newly released higher-priority job).
	Preemptions int64
}

// ErrHorizon is returned for non-positive simulation horizons.
var ErrHorizon = errors.New("sim: horizon must be positive")

// job is one pending job instance.
type job struct {
	taskIdx   int
	release   rational.Rat
	deadline  rational.Rat
	remaining rational.Rat // work units (WCET at unit speed)
}

// SimulateMachine runs one machine of the given speed over all jobs
// released in [0, horizon) and until every released job completes.
// The task set here is the set assigned to this machine.
// An empty task set yields an empty result.
func SimulateMachine(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, error) {
	res, _, err := simulateMachine(ts, speed, policy, arrivals, horizon, nil)
	return res, err
}

// SimulateMachineTraced is SimulateMachine plus an execution trace of
// every (task, interval) segment, for Gantt rendering and audits.
func SimulateMachineTraced(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, *Trace, error) {
	tr := &Trace{}
	res, tr, err := simulateMachine(ts, speed, policy, arrivals, horizon, tr)
	return res, tr, err
}

func simulateMachine(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64, trace *Trace) (MachineResult, *Trace, error) {
	var res MachineResult
	res.BusyTime = rational.Zero()
	res.Makespan = rational.Zero()
	if len(ts) == 0 {
		return res, trace, nil
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
	}
	if speed.Sign() <= 0 {
		return res, trace, fmt.Errorf("sim: speed %v must be positive", speed)
	}
	if horizon <= 0 {
		return res, trace, ErrHorizon
	}
	if arrivals == nil {
		arrivals = PeriodicArrivals{}
	}
	if policy != PolicyEDF && policy != PolicyRM {
		return res, trace, fmt.Errorf("sim: unknown policy %d", int(policy))
	}

	horizonR := rational.FromInt(horizon)

	// Static RM priorities (lower rank = higher priority).
	rank := rmRanks(ts)

	// Per-task next release; exhausted tasks get release >= horizon.
	nextRelease := make([]rational.Rat, len(ts))
	for i, t := range ts {
		nextRelease[i] = arrivals.First(i, t)
	}

	var ready []*job
	now := rational.Zero()
	var running *job // the job that ran in the previous slice, for preemption counting

	higherPriority := func(a, b *job) bool {
		switch policy {
		case PolicyEDF:
			c := a.deadline.Cmp(b.deadline)
			if c != 0 {
				return c < 0
			}
			return a.taskIdx < b.taskIdx
		default: // PolicyRM
			if rank[a.taskIdx] != rank[b.taskIdx] {
				return rank[a.taskIdx] < rank[b.taskIdx]
			}
			return a.release.Less(b.release)
		}
	}

	releaseDue := func() error {
		for i, t := range ts {
			for nextRelease[i].Less(horizonR) && nextRelease[i].LessEq(now) {
				rel := nextRelease[i]
				dl, err := rel.Add(rational.FromInt(t.Period))
				if err != nil {
					return fmt.Errorf("sim: deadline of task %d: %w", i, err)
				}
				ready = append(ready, &job{
					taskIdx:   i,
					release:   rel,
					deadline:  dl,
					remaining: rational.FromInt(t.WCET),
				})
				res.JobsReleased++
				nr, err := arrivals.Next(i, t, rel)
				if err != nil {
					return err
				}
				if !rel.Less(nr) {
					return fmt.Errorf("sim: arrival model violated sporadic constraint for task %d: %v -> %v", i, rel, nr)
				}
				nextRelease[i] = nr
			}
		}
		return nil
	}

	earliestRelease := func() (rational.Rat, bool) {
		var best rational.Rat
		found := false
		for i := range ts {
			if nextRelease[i].Less(horizonR) {
				if !found || nextRelease[i].Less(best) {
					best = nextRelease[i]
					found = true
				}
			}
		}
		return best, found
	}

	const maxEvents = 50_000_000
	for events := 0; ; events++ {
		if events > maxEvents {
			return res, trace, fmt.Errorf("sim: event budget exceeded (horizon %d, %d tasks)", horizon, len(ts))
		}
		if err := releaseDue(); err != nil {
			return res, trace, err
		}
		if len(ready) == 0 {
			nr, any := earliestRelease()
			if !any {
				return res, trace, nil // all released jobs done, no more releases
			}
			now = nr
			continue
		}
		// Pick the highest-priority ready job.
		best := 0
		for k := 1; k < len(ready); k++ {
			if higherPriority(ready[k], ready[best]) {
				best = k
			}
		}
		j := ready[best]
		if running != nil && running != j && running.remaining.Sign() > 0 {
			res.Preemptions++
		}
		running = j

		// It would finish at now + remaining/speed; a release before that
		// preempts (or at least re-evaluates priority).
		runTime, err := j.remaining.Div(speed)
		if err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
		finish, err := now.Add(runTime)
		if err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
		nr, any := earliestRelease()
		if any && nr.Less(finish) {
			// Run until the release, then loop to re-evaluate.
			delta, err := nr.Sub(now)
			if err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			work, err := delta.Mul(speed)
			if err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			if j.remaining, err = j.remaining.Sub(work); err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			if res.BusyTime, err = res.BusyTime.Add(delta); err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			trace.add(j.taskIdx, now, nr)
			now = nr
			continue
		}
		// Job completes.
		if res.BusyTime, err = res.BusyTime.Add(runTime); err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
		trace.add(j.taskIdx, now, finish)
		now = finish
		res.JobsCompleted++
		res.Makespan = rational.Max(res.Makespan, now)
		if j.deadline.Less(now) {
			res.Misses = append(res.Misses, Miss{
				TaskIdx: j.taskIdx, Release: j.release, Deadline: j.deadline, Completion: now,
			})
		}
		ready = append(ready[:best], ready[best+1:]...)
		running = nil
	}
}

// rmRanks assigns rate-monotonic priority ranks (0 = highest).
func rmRanks(ts task.Set) []int {
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := ts[idx[a]], ts[idx[b]]
		if ta.Period != tb.Period {
			return ta.Period < tb.Period
		}
		if ta.WCET != tb.WCET {
			return ta.WCET < tb.WCET
		}
		return idx[a] < idx[b]
	})
	rank := make([]int, len(ts))
	for r, i := range idx {
		rank[i] = r
	}
	return rank
}

// PlatformResult aggregates per-machine simulations of a partition.
type PlatformResult struct {
	// PerMachine is indexed like the platform.
	PerMachine []MachineResult
	// TotalMisses across all machines.
	TotalMisses int
	// TotalJobs released across all machines.
	TotalJobs int64
}

// SimulatePartition replays a partitioned schedule: assignment[i] is the
// machine index for task i (as produced by partition.Result.Assignment).
// alpha scales machine speeds, matching the augmented platform the test
// admitted the partition on. The horizon defaults to the task set's
// hyperperiod when horizon <= 0.
func SimulatePartition(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64) (PlatformResult, error) {
	pres, _, err := simulatePartition(ts, p, assignment, policy, alpha, horizon, false)
	return pres, err
}

// SimulatePartitionTraced is SimulatePartition plus one execution trace
// per machine. Trace TaskIdx values index the full input task set, so a
// single label list feeds Gantt directly.
func SimulatePartitionTraced(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64) (PlatformResult, []*Trace, error) {
	return simulatePartition(ts, p, assignment, policy, alpha, horizon, true)
}

func simulatePartition(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64, traced bool) (PlatformResult, []*Trace, error) {
	var pres PlatformResult
	if err := ts.Validate(); err != nil {
		return pres, nil, fmt.Errorf("sim: %w", err)
	}
	if err := p.Validate(); err != nil {
		return pres, nil, fmt.Errorf("sim: %w", err)
	}
	if len(assignment) != len(ts) {
		return pres, nil, fmt.Errorf("sim: assignment length %d, want %d", len(assignment), len(ts))
	}
	if horizon <= 0 {
		hp, err := ts.Hyperperiod()
		if err != nil {
			return pres, nil, fmt.Errorf("sim: %w", err)
		}
		horizon = hp
	}
	alphaR, err := rational.FromFloat(alpha)
	if err != nil {
		return pres, nil, fmt.Errorf("sim: alpha: %w", err)
	}
	if alphaR.Sign() <= 0 {
		return pres, nil, fmt.Errorf("sim: alpha %v must be positive", alpha)
	}

	sets := make([]task.Set, len(p))
	origIdx := make([][]int, len(p)) // per-machine subset index -> input index
	for i, j := range assignment {
		if j < 0 || j >= len(p) {
			return pres, nil, fmt.Errorf("sim: task %d assigned to invalid machine %d", i, j)
		}
		sets[j] = append(sets[j], ts[i])
		origIdx[j] = append(origIdx[j], i)
	}
	pres.PerMachine = make([]MachineResult, len(p))
	var traces []*Trace
	if traced {
		traces = make([]*Trace, len(p))
	}
	for j := range p {
		speed, err := p[j].SpeedRat()
		if err != nil {
			return pres, nil, fmt.Errorf("sim: machine %d: %w", j, err)
		}
		speed, err = speed.Mul(alphaR)
		if err != nil {
			return pres, nil, fmt.Errorf("sim: machine %d: %w", j, err)
		}
		var mr MachineResult
		if traced {
			var tr *Trace
			mr, tr, err = SimulateMachineTraced(sets[j], speed, policy, PeriodicArrivals{}, horizon)
			if err == nil {
				// Remap subset task indices to input indices.
				for k := range tr.Segments {
					tr.Segments[k].TaskIdx = origIdx[j][tr.Segments[k].TaskIdx]
				}
				traces[j] = tr
			}
		} else {
			mr, err = SimulateMachine(sets[j], speed, policy, PeriodicArrivals{}, horizon)
		}
		if err != nil {
			return pres, nil, fmt.Errorf("sim: machine %d: %w", j, err)
		}
		pres.PerMachine[j] = mr
		pres.TotalMisses += len(mr.Misses)
		pres.TotalJobs += mr.JobsReleased
	}
	return pres, traces, nil
}
