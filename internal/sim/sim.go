// Package sim is a discrete-event simulator for preemptive uniprocessor
// and partitioned multiprocessor scheduling of sporadic task sets.
//
// It is the ground truth behind experiment E9: when the paper's test
// accepts a task set, the witness partition is replayed here — synchronous
// periodic releases (the worst case for implicit-deadline sporadic tasks
// under both EDF and fixed priorities), one hyperperiod of releases, exact
// rational event times — and must produce zero deadline misses.
//
// All timestamps, remaining-work amounts and speeds are exact rationals
// (internal/rational), so a "miss by 10⁻¹⁵" float artifact cannot occur:
// either the schedule fits or it does not.
//
// The production engine (Engine, engine.go) is event-queue driven: a
// release min-heap and a policy-keyed ready heap make every scheduling
// event O(log n), and a free-list job arena makes steady-state simulation
// allocation-free. The original linear-scan implementation is preserved
// as SimulateMachineNaive (naive.go) and the two are held byte-identical
// by differential tests.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"partfeas/internal/faultinject"
	"partfeas/internal/machine"
	"partfeas/internal/pipeline"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

// Policy selects the uniprocessor scheduling discipline.
type Policy int

const (
	// PolicyEDF schedules the ready job with the earliest absolute
	// deadline (ties by lower task index).
	PolicyEDF Policy = iota
	// PolicyRM schedules by rate-monotonic static priority: smaller
	// period first (ties by smaller WCET, then lower task index).
	PolicyRM
)

func (p Policy) String() string {
	switch p {
	case PolicyEDF:
		return "EDF"
	case PolicyRM:
		return "RM"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ArrivalModel produces each task's next release time. Implementations
// must satisfy the sporadic constraint — next ≥ prev + period — and must
// be pure functions of their arguments: the engine may interleave Next
// calls across tasks in any time order, so stateful models would not be
// reproducible.
type ArrivalModel interface {
	// First returns the release time of the task's first job.
	First(taskIdx int, t task.Task) rational.Rat
	// Next returns the release following a release at prev.
	Next(taskIdx int, t task.Task, prev rational.Rat) (rational.Rat, error)
}

// PeriodicArrivals releases every task at 0, P, 2P, … — the synchronous
// periodic pattern, which is the densest legal sporadic arrival sequence
// and the worst case for implicit-deadline schedulability.
type PeriodicArrivals struct{}

// First implements ArrivalModel.
func (PeriodicArrivals) First(int, task.Task) rational.Rat { return rational.Zero() }

// Next implements ArrivalModel.
func (PeriodicArrivals) Next(_ int, t task.Task, prev rational.Rat) (rational.Rat, error) {
	return prev.Add(rational.FromInt(t.Period))
}

// JitteredArrivals adds a deterministic pseudo-random integer gap in
// [0, MaxJitter] after each period, exercising genuinely sporadic (less
// dense) arrival sequences. The zero value (MaxJitter 0) degenerates to
// periodic arrivals.
type JitteredArrivals struct {
	Seed      uint64
	MaxJitter int64
}

// First implements ArrivalModel.
func (JitteredArrivals) First(int, task.Task) rational.Rat { return rational.Zero() }

// Next implements ArrivalModel.
func (j JitteredArrivals) Next(taskIdx int, t task.Task, prev rational.Rat) (rational.Rat, error) {
	gap := t.Period
	if j.MaxJitter > 0 {
		// splitmix64 keyed by seed, task and the previous release keeps
		// the model pure (same inputs, same arrival sequence).
		h := splitmix64(j.Seed ^ uint64(taskIdx)*0x9e3779b97f4a7c15 ^ uint64(prev.Num())<<1 ^ uint64(prev.Den()))
		gap += int64(h % uint64(j.MaxJitter+1))
	}
	return prev.Add(rational.FromInt(gap))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Miss records one deadline violation.
type Miss struct {
	// TaskIdx indexes the simulated task set.
	TaskIdx int
	// Release and Deadline are the job's absolute release and deadline.
	Release  rational.Rat
	Deadline rational.Rat
	// Completion is when the job actually finished; jobs still unfinished
	// at simulation end report their (past-due) deadline with Completion
	// unset and Unfinished true.
	Completion rational.Rat
	Unfinished bool
}

func (m Miss) String() string {
	if m.Unfinished {
		return fmt.Sprintf("task %d released %v missed deadline %v (unfinished)", m.TaskIdx, m.Release, m.Deadline)
	}
	return fmt.Sprintf("task %d released %v missed deadline %v (finished %v)", m.TaskIdx, m.Release, m.Deadline, m.Completion)
}

// MachineResult summarizes one uniprocessor simulation.
type MachineResult struct {
	// Misses lists deadline violations in completion order.
	Misses []Miss
	// JobsReleased and JobsCompleted count jobs within the horizon.
	JobsReleased  int64
	JobsCompleted int64
	// BusyTime is total non-idle time.
	BusyTime rational.Rat
	// Makespan is the completion time of the last job.
	Makespan rational.Rat
	// Preemptions counts preemption events (a running job displaced by a
	// newly released higher-priority job).
	Preemptions int64
}

// ErrHorizon is returned for non-positive simulation horizons.
var ErrHorizon = errors.New("sim: horizon must be positive")

// maxEvents bounds the scheduling-event count of one machine simulation,
// guarding against runaway horizons; both engines share the budget.
const maxEvents = 50_000_000

// job is one pending job instance.
type job struct {
	taskIdx   int
	release   rational.Rat
	deadline  rational.Rat
	remaining rational.Rat // work units (WCET at unit speed)
}

// SimulateMachine runs one machine of the given speed over all jobs
// released in [0, horizon) and until every released job completes.
// The task set here is the set assigned to this machine.
// An empty task set yields an empty result.
func SimulateMachine(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, error) {
	e := getEngine()
	res, err := e.Simulate(ts, speed, policy, arrivals, horizon)
	putEngine(e)
	return res, err
}

// SimulateMachineTraced is SimulateMachine plus an execution trace of
// every (task, interval) segment, for Gantt rendering and audits.
func SimulateMachineTraced(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, *Trace, error) {
	e := getEngine()
	res, tr, err := e.SimulateTraced(ts, speed, policy, arrivals, horizon)
	putEngine(e)
	return res, tr, err
}

// rmRanks assigns rate-monotonic priority ranks (0 = highest).
func rmRanks(ts task.Set) []int {
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := ts[idx[a]], ts[idx[b]]
		if ta.Period != tb.Period {
			return ta.Period < tb.Period
		}
		if ta.WCET != tb.WCET {
			return ta.WCET < tb.WCET
		}
		return idx[a] < idx[b]
	})
	rank := make([]int, len(ts))
	for r, i := range idx {
		rank[i] = r
	}
	return rank
}

// PlatformResult aggregates per-machine simulations of a partition.
type PlatformResult struct {
	// PerMachine is indexed like the platform.
	PerMachine []MachineResult
	// TotalMisses across all machines.
	TotalMisses int
	// TotalJobs released across all machines.
	TotalJobs int64
}

// PartitionOptions tunes SimulatePartitionOpts. The zero value reproduces
// SimulatePartition: synchronous periodic releases, one worker per
// available CPU, no cancellation.
type PartitionOptions struct {
	// Arrivals generates release times for every task. Task indices
	// passed to the model are indices into the full input task set — not
	// machine-local subset positions — so a task's arrival sequence does
	// not depend on which machine it is assigned to. nil means
	// PeriodicArrivals{}.
	Arrivals ArrivalModel
	// Workers bounds how many machines are replayed concurrently; each
	// machine's simulation is fully independent, results are aggregated
	// in machine order after all workers drain, and every worker draws
	// its own Engine — so output is bit-identical at any worker count.
	// <= 0 means GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, cancels the replay cooperatively: machines not
	// yet started are skipped and in-flight engines notice within
	// cancelCheckEvents scheduling events, so the pool drains with
	// bounded latency. The partial PlatformResult (machines finished
	// before the cancel) is returned alongside a *pipeline.Error naming
	// the first interrupted machine.
	Ctx context.Context
}

// SimulatePartition replays a partitioned schedule: assignment[i] is the
// machine index for task i (as produced by partition.Result.Assignment).
// alpha scales machine speeds, matching the augmented platform the test
// admitted the partition on. The horizon defaults to the task set's
// hyperperiod when horizon <= 0.
func SimulatePartition(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64) (PlatformResult, error) {
	return SimulatePartitionOpts(ts, p, assignment, policy, alpha, horizon, PartitionOptions{})
}

// SimulatePartitionOpts is SimulatePartition with an explicit arrival
// model and worker count.
func SimulatePartitionOpts(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64, opts PartitionOptions) (PlatformResult, error) {
	pres, _, err := simulatePartition(ts, p, assignment, policy, alpha, horizon, opts, false)
	return pres, err
}

// SimulatePartitionTraced is SimulatePartition plus one execution trace
// per machine. Trace TaskIdx values index the full input task set, so a
// single label list feeds Gantt directly.
func SimulatePartitionTraced(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64) (PlatformResult, []*Trace, error) {
	return SimulatePartitionTracedOpts(ts, p, assignment, policy, alpha, horizon, PartitionOptions{})
}

// SimulatePartitionTracedOpts is SimulatePartitionTraced with an explicit
// arrival model and worker count.
func SimulatePartitionTracedOpts(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64, opts PartitionOptions) (PlatformResult, []*Trace, error) {
	return simulatePartition(ts, p, assignment, policy, alpha, horizon, opts, true)
}

// remapArrivals presents a machine-local task subset to an ArrivalModel
// using each task's index in the full input set, so arrival sequences are
// a property of the task, not of the partition.
type remapArrivals struct {
	model ArrivalModel
	orig  []int // subset position -> input index
}

func (ra remapArrivals) First(i int, t task.Task) rational.Rat {
	return ra.model.First(ra.orig[i], t)
}

func (ra remapArrivals) Next(i int, t task.Task, prev rational.Rat) (rational.Rat, error) {
	return ra.model.Next(ra.orig[i], t, prev)
}

func simulatePartition(ts task.Set, p machine.Platform, assignment []int, policy Policy, alpha float64, horizon int64, opts PartitionOptions, traced bool) (PlatformResult, []*Trace, error) {
	var pres PlatformResult
	if err := ts.Validate(); err != nil {
		return pres, nil, fmt.Errorf("sim: %w", err)
	}
	if err := p.Validate(); err != nil {
		return pres, nil, fmt.Errorf("sim: %w", err)
	}
	if len(assignment) != len(ts) {
		return pres, nil, fmt.Errorf("sim: assignment length %d, want %d", len(assignment), len(ts))
	}
	if horizon <= 0 {
		hp, err := ts.Hyperperiod()
		if err != nil {
			return pres, nil, fmt.Errorf("sim: %w", err)
		}
		horizon = hp
	}
	alphaR, err := rational.FromFloat(alpha)
	if err != nil {
		return pres, nil, fmt.Errorf("sim: alpha: %w", err)
	}
	if alphaR.Sign() <= 0 {
		return pres, nil, fmt.Errorf("sim: alpha %v must be positive", alpha)
	}

	sets := make([]task.Set, len(p))
	origIdx := make([][]int, len(p)) // per-machine subset index -> input index
	for i, j := range assignment {
		if j < 0 || j >= len(p) {
			return pres, nil, fmt.Errorf("sim: task %d assigned to invalid machine %d", i, j)
		}
		sets[j] = append(sets[j], ts[i])
		origIdx[j] = append(origIdx[j], i)
	}
	// α-scaled speeds up front, sequentially, so speed errors surface in
	// machine order before any worker starts.
	speeds := make([]rational.Rat, len(p))
	for j := range p {
		speed, err := p[j].SpeedRat()
		if err != nil {
			return pres, nil, fmt.Errorf("sim: machine %d: %w", j, err)
		}
		if speeds[j], err = speed.Mul(alphaR); err != nil {
			return pres, nil, fmt.Errorf("sim: machine %d: %w", j, err)
		}
	}

	arrivals := opts.Arrivals
	if arrivals == nil {
		arrivals = PeriodicArrivals{}
	}
	_, periodic := arrivals.(PeriodicArrivals)

	pres.PerMachine = make([]MachineResult, len(p))
	var traces []*Trace
	if traced {
		traces = make([]*Trace, len(p))
	}
	// Per-machine replays are fully independent; fan them out over a
	// bounded worker pool (the deterministic pattern from
	// internal/experiments: results land in machine-indexed slots, all
	// aggregation happens sequentially after the pool drains, so output
	// is bit-identical at any worker count). Worker panics are recovered
	// per machine — one poisoned replay surfaces as that machine's error
	// while the rest of the pool drains cleanly — and a cancelled ctx
	// skips machines not yet started.
	ctx := opts.Ctx
	errs := make([]error, len(p))
	forEachMachine(opts.Workers, len(p), func(j int) {
		defer func() {
			if r := recover(); r != nil {
				errs[j] = pipeline.FromPanic(pipeline.StageSimulate, "", r, debug.Stack()).AtMachine(j)
			}
		}()
		faultinject.Hit(faultinject.SiteSimMachine, int64(j))
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				errs[j] = pipeline.New(pipeline.StageSimulate, "", err).AtMachine(j)
				return
			}
		}
		model := arrivals
		if !periodic {
			// Index-sensitive models see input-set task indices.
			model = remapArrivals{model: arrivals, orig: origIdx[j]}
		}
		eng := getEngine()
		defer putEngine(eng)
		if traced {
			mr, tr, err := eng.SimulateCtxTraced(ctx, sets[j], speeds[j], policy, model, horizon)
			if err != nil {
				errs[j] = err
				return
			}
			// Remap subset task indices to input indices.
			for k := range tr.Segments {
				tr.Segments[k].TaskIdx = origIdx[j][tr.Segments[k].TaskIdx]
			}
			traces[j] = tr
			pres.PerMachine[j] = mr
			return
		}
		mr, err := eng.SimulateCtx(ctx, sets[j], speeds[j], policy, model, horizon)
		if err != nil {
			errs[j] = err
			return
		}
		pres.PerMachine[j] = mr
	})
	for j, err := range errs {
		if err != nil {
			var pe *pipeline.Error
			if errors.As(err, &pe) {
				// Already located (cancel, panic): attach the machine
				// index if the engine-level error lacks one.
				if pe.Machine < 0 {
					pe.Machine = j
				}
				return pres, nil, err
			}
			return pres, nil, fmt.Errorf("sim: machine %d: %w", j, err)
		}
	}
	for j := range pres.PerMachine {
		pres.TotalMisses += len(pres.PerMachine[j].Misses)
		pres.TotalJobs += pres.PerMachine[j].JobsReleased
	}
	return pres, traces, nil
}

// forEachMachine runs fn for machine indices [0, m) across a bounded
// worker pool. fn must be safe for concurrent invocation on distinct
// machine indices; workers <= 0 means GOMAXPROCS.
func forEachMachine(workers, m int, fn func(j int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		for j := 0; j < m; j++ {
			fn(j)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				fn(j)
			}
		}()
	}
	for j := 0; j < m; j++ {
		ch <- j
	}
	close(ch)
	wg.Wait()
}
