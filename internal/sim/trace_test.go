package sim

import (
	"strings"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
	"partfeas/internal/task"
)

func TestTraceMergesAdjacent(t *testing.T) {
	tr := &Trace{}
	tr.add(0, rational.FromInt(0), rational.FromInt(1))
	tr.add(0, rational.FromInt(1), rational.FromInt(2))
	tr.add(1, rational.FromInt(2), rational.FromInt(3))
	tr.add(0, rational.FromInt(4), rational.FromInt(5)) // gap: no merge
	if len(tr.Segments) != 3 {
		t.Fatalf("segments = %d, want 3 (merged)", len(tr.Segments))
	}
	if !tr.Segments[0].End.Equal(rational.FromInt(2)) {
		t.Errorf("merged end = %v", tr.Segments[0].End)
	}
	busy, err := tr.BusyTime()
	if err != nil || !busy.Equal(rational.FromInt(4)) {
		t.Errorf("busy = %v (%v), want 4", busy, err)
	}
	// Degenerate adds are ignored.
	tr.add(0, rational.FromInt(5), rational.FromInt(5))
	if len(tr.Segments) != 3 {
		t.Error("zero-length segment recorded")
	}
	var nilTr *Trace
	nilTr.add(0, rational.FromInt(0), rational.FromInt(1)) // must not panic
}

func TestSimulateMachineTracedConsistent(t *testing.T) {
	ts := task.Set{
		{Name: "a", WCET: 1, Period: 4},
		{Name: "b", WCET: 2, Period: 6},
	}
	res, tr, err := SimulateMachineTraced(ts, rational.One(), PolicyEDF, nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := tr.BusyTime()
	if err != nil {
		t.Fatal(err)
	}
	if !busy.Equal(res.BusyTime) {
		t.Errorf("trace busy %v != result busy %v", busy, res.BusyTime)
	}
	// Segments must be time-ordered and non-overlapping.
	for k := 1; k < len(tr.Segments); k++ {
		if tr.Segments[k].Start.Less(tr.Segments[k-1].End) {
			t.Errorf("segments overlap at %d", k)
		}
	}
}

func TestSimulatePartitionTraced(t *testing.T) {
	ts := task.Set{
		{Name: "a", WCET: 1, Period: 2},
		{Name: "b", WCET: 1, Period: 2},
		{Name: "c", WCET: 2, Period: 4},
	}
	p := machine.New(1, 1)
	pres, traces, err := SimulatePartitionTraced(ts, p, []int{0, 1, 0}, PolicyEDF, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TotalMisses != 0 {
		t.Errorf("misses: %d", pres.TotalMisses)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	// Remapped indices: machine 0 runs tasks {0, 2}, machine 1 runs {1}.
	for _, seg := range traces[0].Segments {
		if seg.TaskIdx != 0 && seg.TaskIdx != 2 {
			t.Errorf("machine 0 ran task %d", seg.TaskIdx)
		}
	}
	for _, seg := range traces[1].Segments {
		if seg.TaskIdx != 1 {
			t.Errorf("machine 1 ran task %d", seg.TaskIdx)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	ts := task.Set{
		{Name: "audio", WCET: 1, Period: 2},
		{Name: "video", WCET: 1, Period: 2},
	}
	p := machine.New(1, 1)
	_, traces, err := SimulatePartitionTraced(ts, p, []int{0, 1}, PolicyEDF, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(traces, []string{"audio", "video"}, 8, 32)
	if !strings.Contains(out, "a") || !strings.Contains(out, "v") {
		t.Errorf("gantt missing task glyphs:\n%s", out)
	}
	if !strings.Contains(out, "m0") || !strings.Contains(out, "m1") {
		t.Errorf("gantt missing machine rows:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("gantt rows:\n%s", out)
	}
	// Degenerate inputs.
	if Gantt(nil, nil, 8, 10) != "" {
		t.Error("empty traces should render empty")
	}
	if Gantt(traces, nil, 0, 10) != "" {
		t.Error("zero horizon should render empty")
	}
	if out := Gantt([]*Trace{nil}, nil, 4, 0); !strings.Contains(out, "m0") {
		t.Error("nil trace row should still render")
	}
}
