package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"partfeas/internal/faultinject"
	"partfeas/internal/leakcheck"
	"partfeas/internal/machine"
	"partfeas/internal/pipeline"
	"partfeas/internal/task"
)

// longReplay is an instance whose replay takes long enough (millions of
// events across machines) that a test can reliably cancel it mid-flight:
// coprime periods defeat trace merging and keep releases dense.
func longReplay() (task.Set, machine.Platform, []int, int64) {
	ts := task.Set{
		{Name: "a", WCET: 1, Period: 2},
		{Name: "b", WCET: 1, Period: 3},
		{Name: "c", WCET: 2, Period: 5},
		{Name: "d", WCET: 1, Period: 7},
		{Name: "e", WCET: 3, Period: 11},
		{Name: "f", WCET: 1, Period: 13},
	}
	plat := machine.New(2, 2, 2)
	assignment := []int{0, 0, 1, 1, 2, 2}
	return ts, plat, assignment, 40_000_000
}

func TestSimulatePartitionCancelMidFlight(t *testing.T) {
	leakcheck.Check(t)
	ts, plat, assignment, horizon := longReplay()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := SimulatePartitionOpts(ts, plat, assignment, PolicyEDF, 1, horizon,
		PartitionOptions{Ctx: ctx, Workers: 2})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled replay returned nil error (horizon too short to test cancellation)")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancel latency %v exceeds 500ms", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
	var pe *pipeline.Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *pipeline.Error", err)
	}
	if pe.Stage != pipeline.StageSimulate || pe.Machine < 0 || pe.Machine >= len(plat) {
		t.Errorf("pipeline error = %+v, want simulate stage naming a machine", pe)
	}
}

func TestSimulatePartitionPreCancelledSkipsWork(t *testing.T) {
	leakcheck.Check(t)
	ts, plat, assignment, horizon := longReplay()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SimulatePartitionOpts(ts, plat, assignment, PolicyEDF, 1, horizon,
		PartitionOptions{Ctx: ctx})
	if err == nil {
		t.Fatal("pre-cancelled replay returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("pre-cancelled replay ran %v, want near-immediate return", elapsed)
	}
	if !pipeline.Canceled(err) {
		t.Errorf("err = %v, want cancellation", err)
	}
}

func TestSimulatePartitionDeadline(t *testing.T) {
	leakcheck.Check(t)
	ts, plat, assignment, horizon := longReplay()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := SimulatePartitionOpts(ts, plat, assignment, PolicyEDF, 1, horizon,
		PartitionOptions{Ctx: ctx, Workers: 3})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

func TestSimulatePartitionNilCtxUnchanged(t *testing.T) {
	// The zero options must behave exactly as before the Ctx field
	// existed: no cancellation, identical results.
	ts := task.Set{{WCET: 1, Period: 2}, {WCET: 1, Period: 3}}
	plat := machine.New(1, 1)
	res, err := SimulatePartitionOpts(ts, plat, []int{0, 1}, PolicyEDF, 1, 12, PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses != 0 {
		t.Errorf("feasible per-task machines missed %d deadlines", res.TotalMisses)
	}
}

// TestSimulatePartitionPanicIsolated injects a panic into one machine's
// worker and checks it surfaces as a structured error naming that
// machine while the pool drains cleanly (no goroutine leak, no crash).
func TestSimulatePartitionPanicIsolated(t *testing.T) {
	leakcheck.Check(t)
	ts, plat, assignment, _ := longReplay()
	const victim = 1
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:  faultinject.SiteSimMachine,
		N:     victim,
		Panic: true,
	})
	defer deactivate()
	_, err := SimulatePartitionOpts(ts, plat, assignment, PolicyEDF, 1, 1000,
		PartitionOptions{Workers: 3})
	if err == nil {
		t.Fatal("injected panic did not surface")
	}
	if !errors.Is(err, pipeline.ErrPanic) {
		t.Fatalf("err = %v, want wrapped pipeline.ErrPanic", err)
	}
	var pe *pipeline.Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *pipeline.Error", err)
	}
	if pe.Machine != victim {
		t.Errorf("panic attributed to machine %d, want %d", pe.Machine, victim)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}

// TestSimulatePartitionEventFaultCancel fires the cancel deterministically
// at a fixed event count inside one engine's loop.
func TestSimulatePartitionEventFaultCancel(t *testing.T) {
	leakcheck.Check(t)
	ts, plat, assignment, horizon := longReplay()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:   faultinject.SiteSimEvent,
		N:      10 * cancelCheckEvents,
		OnFire: cancel,
	})
	defer deactivate()
	_, err := SimulatePartitionOpts(ts, plat, assignment, PolicyEDF, 1, horizon,
		PartitionOptions{Ctx: ctx, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSimulatePartitionPanicReusesPoolSafely checks that a recovered
// panic does not poison the engine pool: subsequent replays on the same
// pool produce correct results.
func TestSimulatePartitionPanicReusesPoolSafely(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 2}, {WCET: 1, Period: 3}}
	plat := machine.New(1, 1)
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:  faultinject.SiteSimMachine,
		N:     0,
		Panic: true,
	})
	if _, err := SimulatePartitionOpts(ts, plat, []int{0, 1}, PolicyEDF, 1, 12, PartitionOptions{Workers: 1}); err == nil {
		t.Fatal("injected panic did not surface")
	}
	deactivate()
	res, err := SimulatePartitionOpts(ts, plat, []int{0, 1}, PolicyEDF, 1, 12, PartitionOptions{Workers: 1})
	if err != nil {
		t.Fatalf("replay after recovered panic: %v", err)
	}
	if res.TotalMisses != 0 || res.TotalJobs == 0 {
		t.Errorf("replay after recovered panic produced %+v", res)
	}
}
