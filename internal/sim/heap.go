package sim

import "partfeas/internal/rational"

// The event-queue engine keeps two binary heaps, both hand-rolled over
// engine-owned slices so sift operations are direct array moves with no
// container/heap interface dispatch and no per-operation allocation.
//
//   - The release heap holds at most one entry per task — that task's next
//     pending release — ordered by (time, task index). Popping it yields
//     due releases in exactly the order the naive engine's index-ordered
//     releaseDue scan produced them, and peeking it answers
//     "earliest future release" in O(1) instead of O(n).
//
//   - The ready heap holds arena indices of released, unfinished jobs,
//     ordered by the scheduling policy (EDF: absolute deadline, then task
//     index; RM: precomputed static rank, then release time). Job
//     priorities never change after release — executing a slice only
//     shrinks `remaining`, which no comparator reads — so the heap needs
//     push/pop only, never a decrease-key.
//
// Both orders are total (same-task jobs have strictly increasing releases
// and hence distinct deadlines; RM ranks are a permutation), so the heap
// maximum is unique and heap order cannot diverge from the naive linear
// scan's choice.

// relEntry is one release-heap slot: task taskIdx next releases at `at`.
type relEntry struct {
	at      rational.Rat
	taskIdx int
}

func relLess(a, b relEntry) bool {
	c := a.at.Cmp(b.at)
	if c != 0 {
		return c < 0
	}
	return a.taskIdx < b.taskIdx
}

// relPush inserts an entry into the release heap.
func (e *Engine) relPush(ent relEntry) {
	e.rel = append(e.rel, ent)
	i := len(e.rel) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !relLess(e.rel[i], e.rel[parent]) {
			break
		}
		e.rel[i], e.rel[parent] = e.rel[parent], e.rel[i]
		i = parent
	}
}

// relPop removes and returns the earliest entry.
func (e *Engine) relPop() relEntry {
	top := e.rel[0]
	n := len(e.rel) - 1
	e.rel[0] = e.rel[n]
	e.rel = e.rel[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && relLess(e.rel[r], e.rel[l]) {
			min = r
		}
		if !relLess(e.rel[min], e.rel[i]) {
			break
		}
		e.rel[i], e.rel[min] = e.rel[min], e.rel[i]
		i = min
	}
	return top
}

// readyLess orders arena indices by scheduling priority (true = a runs
// before b). It mirrors the naive engine's higherPriority exactly.
func (e *Engine) readyLess(a, b int32) bool {
	ja, jb := &e.jobs[a], &e.jobs[b]
	if e.policy == PolicyEDF {
		c := ja.deadline.Cmp(jb.deadline)
		if c != 0 {
			return c < 0
		}
		return ja.taskIdx < jb.taskIdx
	}
	ra, rb := e.rank[ja.taskIdx], e.rank[jb.taskIdx]
	if ra != rb {
		return ra < rb
	}
	return ja.release.Less(jb.release)
}

// readyPush inserts a job (by arena index) into the ready heap.
func (e *Engine) readyPush(idx int32) {
	e.ready = append(e.ready, idx)
	i := len(e.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.readyLess(e.ready[i], e.ready[parent]) {
			break
		}
		e.ready[i], e.ready[parent] = e.ready[parent], e.ready[i]
		i = parent
	}
}

// readyPop removes and returns the highest-priority job's arena index.
func (e *Engine) readyPop() int32 {
	top := e.ready[0]
	n := len(e.ready) - 1
	e.ready[0] = e.ready[n]
	e.ready = e.ready[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && e.readyLess(e.ready[r], e.ready[l]) {
			min = r
		}
		if !e.readyLess(e.ready[min], e.ready[i]) {
			break
		}
		e.ready[i], e.ready[min] = e.ready[min], e.ready[i]
		i = min
	}
	return top
}
