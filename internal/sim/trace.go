package sim

import (
	"fmt"
	"strings"

	"partfeas/internal/rational"
)

// Segment is one contiguous stretch of a machine executing one task.
type Segment struct {
	TaskIdx    int
	Start, End rational.Rat
}

// Trace records the execution segments of one machine in time order.
type Trace struct {
	Segments []Segment
}

// add appends a segment, merging with the previous one when the same
// task continues without a gap.
func (tr *Trace) add(taskIdx int, start, end rational.Rat) {
	if tr == nil || start.Cmp(end) >= 0 {
		return
	}
	if n := len(tr.Segments); n > 0 {
		last := &tr.Segments[n-1]
		if last.TaskIdx == taskIdx && last.End.Equal(start) {
			last.End = end
			return
		}
	}
	tr.Segments = append(tr.Segments, Segment{TaskIdx: taskIdx, Start: start, End: end})
}

// BusyTime returns the summed segment lengths.
func (tr *Trace) BusyTime() (rational.Rat, error) {
	total := rational.Zero()
	for _, s := range tr.Segments {
		d, err := s.End.Sub(s.Start)
		if err != nil {
			return rational.Rat{}, err
		}
		total, err = total.Add(d)
		if err != nil {
			return rational.Rat{}, err
		}
	}
	return total, nil
}

// Gantt renders traces as an ASCII chart: one row per machine, width
// character cells covering [0, horizon). Each cell shows the task label
// (first rune of its name, or a digit) that occupies the majority of the
// cell, '.' for idle. Labels lists one string per task index.
func Gantt(traces []*Trace, labels []string, horizon int64, width int) string {
	if width <= 0 {
		width = 80
	}
	if horizon <= 0 || len(traces) == 0 {
		return ""
	}
	cellGlyph := func(taskIdx int) byte {
		if taskIdx >= 0 && taskIdx < len(labels) && len(labels[taskIdx]) > 0 {
			return labels[taskIdx][0]
		}
		return byte('0' + taskIdx%10)
	}
	var b strings.Builder
	scale := float64(horizon) / float64(width)
	for mi, tr := range traces {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		occupancy := make([]float64, width) // best coverage seen per cell
		if tr != nil {
			for _, seg := range tr.Segments {
				s := seg.Start.Float64()
				e := seg.End.Float64()
				first := int(s / scale)
				last := int((e - 1e-12) / scale)
				for c := first; c <= last && c < width; c++ {
					if c < 0 {
						continue
					}
					cellLo := float64(c) * scale
					cellHi := cellLo + scale
					lo, hi := s, e
					if cellLo > lo {
						lo = cellLo
					}
					if cellHi < hi {
						hi = cellHi
					}
					if cover := hi - lo; cover > occupancy[c] {
						occupancy[c] = cover
						row[c] = cellGlyph(seg.TaskIdx)
					}
				}
			}
		}
		fmt.Fprintf(&b, "m%-2d |%s|\n", mi, row)
	}
	// Time axis.
	fmt.Fprintf(&b, "     0%s%d\n", strings.Repeat(" ", width-1-len(fmt.Sprint(horizon))), horizon)
	return b.String()
}
