package sim

import "sync"

// The job arena gives the engine zero steady-state allocations per job.
// Jobs live in one flat slice and are referred to by index, never by
// pointer — the backing array may move when the arena grows, so indices
// are the only stable handles. Completed jobs push their index onto a
// free list; the next release pops it and overwrites in place. Once the
// arena has grown to the maximum concurrent backlog of a run, no further
// job storage is ever allocated, and an Engine reused across runs keeps
// that capacity (benchmarks assert 0 allocs/op on repeat Simulate calls).

// jobAlloc returns an arena slot for a new job, reusing a freed slot when
// one exists.
func (e *Engine) jobAlloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.jobs = append(e.jobs, job{})
	return int32(len(e.jobs) - 1)
}

// jobFree returns a completed job's slot to the free list.
func (e *Engine) jobFree(idx int32) {
	e.free = append(e.free, idx)
}

// enginePool recycles Engines — and with them their arenas, heaps, rank
// buffers and trace scratch — across the one-shot package entry points
// (SimulateMachine, SimulatePartition workers), so even callers that
// never hold an Engine amortize setup allocations across calls.
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

func getEngine() *Engine  { return enginePool.Get().(*Engine) }
func putEngine(e *Engine) { enginePool.Put(e) }
