package sim

import (
	"fmt"

	"partfeas/internal/rational"
	"partfeas/internal/task"
)

// This file preserves the original linear-scan simulator verbatim. It is
// the reference implementation the event-queue engine (engine.go) is held
// to: differential tests require byte-identical MachineResult and Trace
// output from both engines over fuzzed task sets, both policies and both
// arrival models. Per scheduling event it scans all n tasks for due and
// earliest releases and all ready jobs for the priority maximum — O(n)
// work the production engine replaces with O(log n) heap operations.

// SimulateMachineNaive is the preserved reference engine behind
// SimulateMachine. It produces identical results by construction slower:
// every scheduling event costs O(n + |ready|) scans and every released
// job a fresh heap allocation. It exists for differential testing and as
// the baseline of BenchmarkSimulateMachine; production callers should use
// SimulateMachine.
func SimulateMachineNaive(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, error) {
	res, _, err := simulateMachineNaive(ts, speed, policy, arrivals, horizon, nil)
	return res, err
}

// SimulateMachineNaiveTraced is SimulateMachineNaive plus the execution
// trace, for differential tests of the traced path.
func SimulateMachineNaiveTraced(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64) (MachineResult, *Trace, error) {
	tr := &Trace{}
	res, tr, err := simulateMachineNaive(ts, speed, policy, arrivals, horizon, tr)
	return res, tr, err
}

func simulateMachineNaive(ts task.Set, speed rational.Rat, policy Policy, arrivals ArrivalModel, horizon int64, trace *Trace) (MachineResult, *Trace, error) {
	var res MachineResult
	res.BusyTime = rational.Zero()
	res.Makespan = rational.Zero()
	if len(ts) == 0 {
		return res, trace, nil
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
	}
	if speed.Sign() <= 0 {
		return res, trace, fmt.Errorf("sim: speed %v must be positive", speed)
	}
	if horizon <= 0 {
		return res, trace, ErrHorizon
	}
	if arrivals == nil {
		arrivals = PeriodicArrivals{}
	}
	if policy != PolicyEDF && policy != PolicyRM {
		return res, trace, fmt.Errorf("sim: unknown policy %d", int(policy))
	}

	horizonR := rational.FromInt(horizon)

	// Static RM priorities (lower rank = higher priority).
	rank := rmRanks(ts)

	// Per-task next release; exhausted tasks get release >= horizon.
	nextRelease := make([]rational.Rat, len(ts))
	for i, t := range ts {
		nextRelease[i] = arrivals.First(i, t)
	}

	var ready []*job
	now := rational.Zero()
	var running *job // the job that ran in the previous slice, for preemption counting

	higherPriority := func(a, b *job) bool {
		switch policy {
		case PolicyEDF:
			c := a.deadline.Cmp(b.deadline)
			if c != 0 {
				return c < 0
			}
			return a.taskIdx < b.taskIdx
		default: // PolicyRM
			if rank[a.taskIdx] != rank[b.taskIdx] {
				return rank[a.taskIdx] < rank[b.taskIdx]
			}
			return a.release.Less(b.release)
		}
	}

	releaseDue := func() error {
		for i, t := range ts {
			for nextRelease[i].Less(horizonR) && nextRelease[i].LessEq(now) {
				rel := nextRelease[i]
				dl, err := rel.Add(rational.FromInt(t.Period))
				if err != nil {
					return fmt.Errorf("sim: deadline of task %d: %w", i, err)
				}
				ready = append(ready, &job{
					taskIdx:   i,
					release:   rel,
					deadline:  dl,
					remaining: rational.FromInt(t.WCET),
				})
				res.JobsReleased++
				nr, err := arrivals.Next(i, t, rel)
				if err != nil {
					return err
				}
				if !rel.Less(nr) {
					return fmt.Errorf("sim: arrival model violated sporadic constraint for task %d: %v -> %v", i, rel, nr)
				}
				nextRelease[i] = nr
			}
		}
		return nil
	}

	earliestRelease := func() (rational.Rat, bool) {
		var best rational.Rat
		found := false
		for i := range ts {
			if nextRelease[i].Less(horizonR) {
				if !found || nextRelease[i].Less(best) {
					best = nextRelease[i]
					found = true
				}
			}
		}
		return best, found
	}

	for events := 0; ; events++ {
		if events > maxEvents {
			return res, trace, fmt.Errorf("sim: event budget exceeded (horizon %d, %d tasks)", horizon, len(ts))
		}
		if err := releaseDue(); err != nil {
			return res, trace, err
		}
		if len(ready) == 0 {
			nr, any := earliestRelease()
			if !any {
				return res, trace, nil // all released jobs done, no more releases
			}
			now = nr
			continue
		}
		// Pick the highest-priority ready job.
		best := 0
		for k := 1; k < len(ready); k++ {
			if higherPriority(ready[k], ready[best]) {
				best = k
			}
		}
		j := ready[best]
		if running != nil && running != j && running.remaining.Sign() > 0 {
			res.Preemptions++
		}
		running = j

		// It would finish at now + remaining/speed; a release before that
		// preempts (or at least re-evaluates priority).
		runTime, err := j.remaining.Div(speed)
		if err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
		finish, err := now.Add(runTime)
		if err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
		nr, any := earliestRelease()
		if any && nr.Less(finish) {
			// Run until the release, then loop to re-evaluate.
			delta, err := nr.Sub(now)
			if err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			work, err := delta.Mul(speed)
			if err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			if j.remaining, err = j.remaining.Sub(work); err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			if res.BusyTime, err = res.BusyTime.Add(delta); err != nil {
				return res, trace, fmt.Errorf("sim: %w", err)
			}
			trace.add(j.taskIdx, now, nr)
			now = nr
			continue
		}
		// Job completes.
		if res.BusyTime, err = res.BusyTime.Add(runTime); err != nil {
			return res, trace, fmt.Errorf("sim: %w", err)
		}
		trace.add(j.taskIdx, now, finish)
		now = finish
		res.JobsCompleted++
		res.Makespan = rational.Max(res.Makespan, now)
		if j.deadline.Less(now) {
			res.Misses = append(res.Misses, Miss{
				TaskIdx: j.taskIdx, Release: j.release, Deadline: j.deadline, Completion: now,
			})
		}
		ready = append(ready[:best], ready[best+1:]...)
		running = nil
	}
}
