package dbf

import (
	"fmt"
	"math"
	"sort"

	"partfeas/internal/machine"
)

// dmOrder returns task indices in deadline-monotonic priority order
// (smaller relative deadline = higher priority), which is the optimal
// fixed-priority assignment for constrained-deadline sporadic tasks on
// one machine (Leung & Whitehead).
func dmOrder(s Set) []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := s[idx[a]], s[idx[b]]
		if ta.Deadline != tb.Deadline {
			return ta.Deadline < tb.Deadline
		}
		if ta.Period != tb.Period {
			return ta.Period < tb.Period
		}
		return ta.WCET < tb.WCET
	})
	return idx
}

// ResponseTimesDM computes exact worst-case response times under
// deadline-monotonic preemptive fixed priorities on a speed-s machine.
// Entries are +Inf for tasks whose response exceeds their deadline.
func ResponseTimesDM(s Set, speed float64) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("dbf: speed %v must be positive and finite", speed)
	}
	idx := dmOrder(s)
	res := make([]float64, len(s))
	for rank, i := range idx {
		ci := float64(s[i].WCET) / speed
		deadline := float64(s[i].Deadline)
		r := ci
		const maxIter = 1 << 20
		converged := false
		for iter := 0; iter < maxIter; iter++ {
			next := ci
			for _, j := range idx[:rank] {
				next += math.Ceil(r/float64(s[j].Period)) * float64(s[j].WCET) / speed
			}
			if next > deadline {
				r = math.Inf(1)
				converged = true
				break
			}
			if next <= r {
				r = next
				converged = true
				break
			}
			r = next
		}
		if !converged {
			return nil, fmt.Errorf("dbf: DM response-time iteration did not converge for task %d", i)
		}
		res[i] = r
	}
	return res, nil
}

// FeasibleDM reports whether the set is schedulable under
// deadline-monotonic fixed priorities on a speed-s machine (exact, via
// response-time analysis; the synchronous pattern is the critical
// instant for constrained deadlines).
func FeasibleDM(s Set, speed float64) (bool, error) {
	rts, err := ResponseTimesDM(s, speed)
	if err != nil {
		return false, err
	}
	for i, r := range rts {
		if r > float64(s[i].Deadline) {
			return false, nil
		}
	}
	return true, nil
}

// FirstFitDM runs the paper's partitioning shape with exact DM
// response-time admission: tasks in non-increasing density order,
// machines in non-decreasing speed order — the fixed-priority
// constrained-deadline analogue of FirstFit.
func FirstFitDM(s Set, p machine.Platform, alpha float64) (feasible bool, assignment []int, err error) {
	if err := s.Validate(); err != nil {
		return false, nil, err
	}
	if err := p.Validate(); err != nil {
		return false, nil, fmt.Errorf("dbf: %w", err)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return false, nil, fmt.Errorf("dbf: alpha %v must be positive", alpha)
	}
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := s[order[a]].Density(), s[order[b]].Density()
		if da != db {
			return da > db
		}
		return s[order[a]].Deadline < s[order[b]].Deadline
	})
	mOrder := make([]int, len(p))
	for j := range mOrder {
		mOrder[j] = j
	}
	sort.SliceStable(mOrder, func(a, b int) bool { return p[mOrder[a]].Speed < p[mOrder[b]].Speed })

	assignment = make([]int, len(s))
	for i := range assignment {
		assignment[i] = -1
	}
	perMachine := make([]Set, len(p))
	for _, ti := range order {
		placed := false
		for _, mj := range mOrder {
			candidate := append(append(Set{}, perMachine[mj]...), s[ti])
			ok, aerr := FeasibleDM(candidate, alpha*p[mj].Speed)
			if aerr != nil {
				return false, nil, aerr
			}
			if ok {
				perMachine[mj] = candidate
				assignment[ti] = mj
				placed = true
				break
			}
		}
		if !placed {
			return false, assignment, nil
		}
	}
	return true, assignment, nil
}
