package dbf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"partfeas/internal/machine"
)

// Arbitrary-deadline analysis: D may exceed P, so several jobs of one
// task can be live at once. The demand bound function formula is
// unchanged; what changes is the schedulability machinery — EDF needs the
// synchronous busy period as its checkpoint horizon, and fixed-priority
// analysis needs Lehoczky's level-i busy-period iteration over every job
// in the busy period, not just the first.

// ValidateArbitrary checks the task under the arbitrary-deadline model:
// WCET and period positive, deadline at least the WCET (a job that cannot
// even run to completion by its deadline on an infinitely fast machine is
// malformed), but deadline may exceed the period.
func (t Task) ValidateArbitrary() error {
	if t.WCET <= 0 {
		return fmt.Errorf("dbf: task %q: WCET %d must be positive", t.Name, t.WCET)
	}
	if t.Period <= 0 {
		return fmt.Errorf("dbf: task %q: period %d must be positive", t.Name, t.Period)
	}
	if t.Deadline < t.WCET {
		return fmt.Errorf("dbf: task %q: deadline %d < WCET %d", t.Name, t.Deadline, t.WCET)
	}
	return nil
}

// ValidateArbitrary checks every task under the arbitrary-deadline model.
func (s Set) ValidateArbitrary() error {
	if len(s) == 0 {
		return errors.New("dbf: empty task set")
	}
	for i, t := range s {
		if err := t.ValidateArbitrary(); err != nil {
			return fmt.Errorf("dbf: task %d: %w", i, err)
		}
	}
	return nil
}

// busyPeriod returns the length of the synchronous processor busy period
// on a speed-s machine: the smallest fixed point of
// W(t) = Σ ⌈t/P_i⌉·C_i / s. Requires total utilization strictly below the
// speed; otherwise ok is false.
func (s Set) busyPeriod(speed float64) (length float64, ok bool) {
	u := s.TotalUtilization()
	if u >= speed {
		return 0, false
	}
	t := 0.0
	for _, tk := range s {
		t += float64(tk.WCET) / speed
	}
	for iter := 0; iter < 1<<20; iter++ {
		next := 0.0
		for _, tk := range s {
			next += math.Ceil(t/float64(tk.Period)) * float64(tk.WCET) / speed
		}
		if next <= t {
			return t, true
		}
		t = next
	}
	return 0, false
}

// FeasibleEDFArbitrary decides exactly whether EDF schedules an
// arbitrary-deadline set on a speed-s machine, by processor-demand
// analysis with the synchronous busy period as checkpoint horizon
// (Baruah, Mok & Rosier). Total utilization at or above the speed is
// handled like FeasibleEDF: infeasible above; at equality, fall back to
// one hyperperiod plus the largest deadline.
func FeasibleEDFArbitrary(s Set, speed float64) (bool, error) {
	if err := s.ValidateArbitrary(); err != nil {
		return false, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return false, fmt.Errorf("dbf: speed %v must be positive and finite", speed)
	}
	u := s.TotalUtilization()
	if u > speed*(1+1e-12) {
		return false, nil
	}
	var maxD int64
	for _, t := range s {
		if t.Deadline > maxD {
			maxD = t.Deadline
		}
	}
	var horizon int64
	if bp, ok := s.busyPeriod(speed); ok {
		horizon = int64(math.Ceil(bp))
		if horizon < maxD {
			horizon = maxD
		}
	} else {
		hp := int64(1)
		for _, t := range s {
			g := gcd(hp, t.Period)
			if q := hp / g; t.Period > (1<<62)/q {
				return false, ErrHorizonTooLarge
			}
			hp = hp / g * t.Period
		}
		if hp > (1<<62)-maxD {
			return false, ErrHorizonTooLarge
		}
		horizon = hp + maxD
	}
	return checkDemand(s, speed, horizon)
}

// ResponseTimesDMArbitrary computes exact worst-case response times
// under deadline-monotonic fixed priorities for arbitrary deadlines,
// using Lehoczky's level-i busy-period analysis: within task i's busy
// period of Q jobs, the q-th job finishes at the fixed point of
// F = ((q+1)·C_i + Σ_{hp} ⌈F/P_j⌉·C_j)/s and responds in F − q·P_i.
// Entries are +Inf when a response exceeds the deadline (iteration for
// later jobs of that task stops there).
func ResponseTimesDMArbitrary(s Set, speed float64) ([]float64, error) {
	if err := s.ValidateArbitrary(); err != nil {
		return nil, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("dbf: speed %v must be positive and finite", speed)
	}
	idx := dmOrder(s)
	res := make([]float64, len(s))
	for rank, i := range idx {
		r, err := worstResponseAtLowest(s, idx[:rank], i, speed)
		if err != nil {
			return nil, err
		}
		res[i] = r
	}
	return res, nil
}

// worstResponseAtLowest returns the worst-case response time of task i
// when every task in hp has higher priority, via Lehoczky level-i
// busy-period analysis. +Inf means the response exceeds the deadline (or
// is unbounded). This depends only on the *set* hp, not its internal
// order — the property Audsley's optimal priority assignment relies on.
func worstResponseAtLowest(s Set, hp []int, i int, speed float64) (float64, error) {
	level := append(Set{}, s[i])
	for _, j := range hp {
		level = append(level, s[j])
	}
	bp, ok := level.busyPeriod(speed)
	if !ok {
		// Level utilization ≥ speed. Strictly above: responses grow
		// without bound. Exactly at the speed: the synchronous pattern
		// repeats every level hyperperiod, so checking the jobs inside
		// one hyperperiod is exact.
		if level.TotalUtilization() > speed*(1+1e-12) {
			return math.Inf(1), nil
		}
		hpLen := int64(1)
		for _, tk := range level {
			g := gcd(hpLen, tk.Period)
			if q := hpLen / g; tk.Period > (1<<40)/q {
				return 0, ErrHorizonTooLarge
			}
			hpLen = hpLen / g * tk.Period
		}
		bp = float64(hpLen)
	}
	q := int64(math.Ceil(bp / float64(s[i].Period)))
	if q < 1 {
		q = 1
	}
	worst := 0.0
	for job := int64(0); job < q; job++ {
		f, ok := fixedPointFinish(s, hp, i, job, speed)
		if !ok {
			return math.Inf(1), nil
		}
		r := f - float64(job*s[i].Period)
		if r > worst {
			worst = r
		}
		if worst > float64(s[i].Deadline) {
			return math.Inf(1), nil
		}
	}
	return worst, nil
}

// AssignOPA runs Audsley's optimal priority assignment: levels are filled
// from lowest to highest, placing at each level any unassigned task whose
// worst response there meets its deadline. It returns the priority order
// (order[0] = highest priority) and ok=false when no fixed-priority
// assignment is feasible — OPA is optimal, so this is a definitive
// verdict for the arbitrary-deadline model on one machine.
func AssignOPA(s Set, speed float64) (order []int, ok bool, err error) {
	if err := s.ValidateArbitrary(); err != nil {
		return nil, false, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, false, fmt.Errorf("dbf: speed %v must be positive and finite", speed)
	}
	n := len(s)
	unassigned := make([]int, 0, n)
	for i := 0; i < n; i++ {
		unassigned = append(unassigned, i)
	}
	reversed := make([]int, 0, n) // lowest priority first
	for level := n - 1; level >= 0; level-- {
		placed := -1
		for pos, i := range unassigned {
			hp := make([]int, 0, len(unassigned)-1)
			for _, j := range unassigned {
				if j != i {
					hp = append(hp, j)
				}
			}
			r, err := worstResponseAtLowest(s, hp, i, speed)
			if err != nil {
				return nil, false, err
			}
			if r <= float64(s[i].Deadline) {
				placed = pos
				break
			}
		}
		if placed == -1 {
			return nil, false, nil
		}
		reversed = append(reversed, unassigned[placed])
		unassigned = append(unassigned[:placed], unassigned[placed+1:]...)
	}
	order = make([]int, n)
	for k := range reversed {
		order[n-1-k] = reversed[k]
	}
	return order, true, nil
}

// FeasibleOPA reports whether any fixed-priority assignment schedules the
// arbitrary-deadline set on a speed-s machine.
func FeasibleOPA(s Set, speed float64) (bool, error) {
	_, ok, err := AssignOPA(s, speed)
	return ok, err
}

// fixedPointFinish iterates F = ((q+1)·C_i + Σ_hp ⌈F/P_j⌉·C_j)/speed.
func fixedPointFinish(s Set, hp []int, i int, q int64, speed float64) (float64, bool) {
	target := float64(q+1) * float64(s[i].WCET)
	f := target / speed
	for iter := 0; iter < 1<<20; iter++ {
		next := target
		for _, j := range hp {
			next += math.Ceil(f/float64(s[j].Period)) * float64(s[j].WCET)
		}
		next /= speed
		if next <= f {
			return next, true
		}
		// Divergence guard: beyond q·P + D the response already fails.
		if next > float64(q*s[i].Period+s[i].Deadline)+1 {
			return 0, false
		}
		f = next
	}
	return 0, false
}

// FeasibleDMArbitrary reports exact DM schedulability for
// arbitrary-deadline sets on a speed-s machine.
func FeasibleDMArbitrary(s Set, speed float64) (bool, error) {
	rts, err := ResponseTimesDMArbitrary(s, speed)
	if err != nil {
		return false, err
	}
	for i, r := range rts {
		if r > float64(s[i].Deadline) {
			return false, nil
		}
	}
	return true, nil
}

// FirstFitOPA runs the paper's partitioning shape with OPA-admission:
// a task joins a machine when Audsley's assignment still schedules the
// machine's whole set at speed α·s — the strongest fixed-priority
// admission available for arbitrary deadlines.
func FirstFitOPA(s Set, p machine.Platform, alpha float64) (feasible bool, assignment []int, err error) {
	if err := s.ValidateArbitrary(); err != nil {
		return false, nil, err
	}
	if err := p.Validate(); err != nil {
		return false, nil, fmt.Errorf("dbf: %w", err)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return false, nil, fmt.Errorf("dbf: alpha %v must be positive", alpha)
	}
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := s[order[a]].Density(), s[order[b]].Density()
		if da != db {
			return da > db
		}
		return s[order[a]].Deadline < s[order[b]].Deadline
	})
	mOrder := make([]int, len(p))
	for j := range mOrder {
		mOrder[j] = j
	}
	sort.SliceStable(mOrder, func(a, b int) bool { return p[mOrder[a]].Speed < p[mOrder[b]].Speed })

	assignment = make([]int, len(s))
	for i := range assignment {
		assignment[i] = -1
	}
	perMachine := make([]Set, len(p))
	for _, ti := range order {
		placed := false
		for _, mj := range mOrder {
			candidate := append(append(Set{}, perMachine[mj]...), s[ti])
			ok, aerr := FeasibleOPA(candidate, alpha*p[mj].Speed)
			if aerr != nil {
				return false, nil, aerr
			}
			if ok {
				perMachine[mj] = candidate
				assignment[ti] = mj
				placed = true
				break
			}
		}
		if !placed {
			return false, assignment, nil
		}
	}
	return true, assignment, nil
}
