package dbf

import (
	"fmt"
	"math"
)

func errBadSpeed(speed float64) error {
	return fmt.Errorf("dbf: speed %v must be positive and finite", speed)
}

// Tiered admission: the three-stage pipeline the online engine runs per
// machine probe. Every tier's verdict is *conclusive* — it equals what
// FeasibleEDF(s, speed) returns, errors included — so callers may stop
// at the first tier that answers and still agree bit-for-bit with an
// exact fresh solve. Tiers that cannot guarantee that (a margin case, an
// unsafe horizon) simply decline, and the exact test decides.
//
//	tier 1 (density):  O(n) here, O(1) over the engine's cached folds.
//	                   Σw > s rejects (FeasibleEDF's own pre-check);
//	                   Σδ ≤ s accepts (dbf(t) ≤ Σδ·t for constrained
//	                   tasks, since ⌊(t−D)/P⌋+1 ≤ t/D when P ≥ D).
//	tier 2 (approx):   the Albers–Slomka k-point band. Exact demand at a
//	                   checked point over s·t·(1+1e-12) rejects; the
//	                   approximate dbf under s·t·(1−1e-9) at every jump
//	                   point accepts (ApproxDBF ≥ DBF everywhere, and
//	                   between jump points both grow slower than s·t).
//	tier 3 (exact):    FeasibleEDF itself.
//
// The 1e-9 margins leave room for the engine's incrementally folded
// sums, whose rounding differs from a fresh summation by at most a few
// ulps per resident task; anything inside the margin band falls through
// to the exact test, which the engine evaluates over the identically
// ordered candidate set and therefore rounds identically.

// Tier identifies the pipeline stage that decided an admission probe.
type Tier int

const (
	TierNone Tier = iota
	TierDensity
	TierApprox
	TierExact
)

func (t Tier) String() string {
	switch t {
	case TierDensity:
		return "density"
	case TierApprox:
		return "dbf_approx"
	case TierExact:
		return "dbf_exact"
	default:
		return "none"
	}
}

// horizonSafeBound keeps every quantity the safety argument multiplies
// comfortably inside int64/float64 range.
const horizonSafeBound = float64(int64(1) << 61)

// HorizonSafe reports whether FeasibleEDF(s, speed) is guaranteed to
// return a verdict — no ErrHorizonTooLarge, no ErrDemandOverflow — so a
// sufficient accept or reject established by cheaper means is conclusive
// against it. The caller passes conservative *upper bounds* on the set's
// total utilization, total density, Σ1/P_i and Σ(P_i−D_i)·w_i (inflate
// incrementally folded sums by a relative 1e-9 to dominate the fresh
// summation FeasibleEDF performs), plus the exact max deadline and task
// count. The conditions are:
//
//   - uUB ≤ s·(1−1e-6): the La branch is taken (never the hyperperiod
//     fallback) and its denominator s−u is well away from zero;
//   - horizon = max(La, maxD) < 2^61: the float→int64 conversion and all
//     demand products stay in range;
//   - n + horizon·Σ1/P < maxCheckpoints/2: checkDemand finishes within
//     its enumeration budget;
//   - densUB·horizon < 2^61: dbf(t) ≤ Σδ·t fits in int64 at every
//     enumerated checkpoint, so dbfChecked cannot overflow before the
//     first violation (if any) is reached.
func HorizonSafe(speed, uUB, densUB, invPUB, numUB float64, maxD int64, n int) bool {
	if !(uUB <= speed*(1-1e-6)) {
		return false
	}
	h := numUB / (speed - uUB)
	if fm := float64(maxD); fm > h {
		h = fm
	}
	if !(h < horizonSafeBound) {
		return false
	}
	if !(float64(n)+(h+1)*invPUB < float64(maxCheckpoints)/2) {
		return false
	}
	if !(densUB*(h+1) < horizonSafeBound) {
		return false
	}
	return true
}

// TieredFeasibleEDF answers FeasibleEDF(s, speed) through the tiered
// pipeline, reporting which tier decided. The verdict (and any error) is
// identical to calling FeasibleEDF directly; k ≤ 0 disables the cheap
// tiers and runs the exact test alone.
func TieredFeasibleEDF(s Set, speed float64, k int) (bool, Tier, error) {
	if k < 1 {
		ok, err := FeasibleEDF(s, speed)
		return ok, TierExact, err
	}
	if err := s.Validate(); err != nil {
		return false, TierNone, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return false, TierNone, errBadSpeed(speed)
	}
	// Identical expression and summation order to FeasibleEDF's
	// pre-check, so this rejection is bitwise the same decision.
	u := s.TotalUtilization()
	if u > speed*(1+1e-12) {
		return false, TierDensity, nil
	}
	var dens, invP, num float64
	var maxD int64
	for _, t := range s {
		dens += t.Density()
		invP += 1 / float64(t.Period)
		num += float64(t.Period-t.Deadline) * t.Utilization()
		if t.Deadline > maxD {
			maxD = t.Deadline
		}
	}
	if HorizonSafe(speed, u*(1+1e-9), dens*(1+1e-9), invP*(1+1e-9), num*(1+1e-9), maxD, len(s)) {
		if dens <= speed*(1-1e-9) {
			return true, TierDensity, nil
		}
		switch approxBand(s, speed, k, maxD, u <= speed) {
		case +1:
			return true, TierApprox, nil
		case -1:
			return false, TierApprox, nil
		}
	}
	ok, err := FeasibleEDF(s, speed)
	return ok, TierExact, err
}

// approxBand scans the union's jump points (each task's first k
// deadlines) once: +1 is a conclusive accept, −1 a conclusive reject, 0
// inconclusive. The caller has established HorizonSafe.
//
// Reject side: an exact demand violation at a checked point t ≤ maxD is
// conclusive because the last deadline checkpoint t* ≤ t carries the
// same demand (dbf is a step function), s·t* ≤ s·t, and checkDemand
// provably reaches t* ≤ maxD ≤ horizon within budget under HorizonSafe —
// the exact test cannot answer true. Points beyond maxD are not used for
// rejection: the exact test's horizon is only guaranteed to cover maxD.
//
// Accept side: if the approximate dbf stays under s·t·(1−1e-9) at every
// jump point of every task, it stays under s·t everywhere (between jump
// points it is linear with slope ≤ Σw ≤ s·(1+1e-12)), and DBF ≤ ApproxDBF
// pointwise, so no checkpoint can violate the exact test's tolerance.
func approxBand(s Set, speed float64, k int, maxD int64, uOK bool) int {
	approxOK := uOK
	for _, tk := range s {
		t := tk.Deadline
		for j := 0; j < k; j++ {
			st := speed * float64(t)
			if t <= maxD {
				if d, ok := s.dbfChecked(t); ok && float64(d) > st*(1+1e-12) {
					return -1
				}
			}
			if approxOK && s.ApproxDBF(t, k) > st*(1-1e-9) {
				approxOK = false
			}
			if !approxOK && t > maxD {
				break // nothing left to learn from this task's later points
			}
			if t > math.MaxInt64-tk.Period {
				// Later points exceed int64 range and therefore lie far
				// beyond the exact test's horizon (< 2^61 under
				// HorizonSafe); they cannot affect its verdict.
				break
			}
			t += tk.Period
		}
	}
	if approxOK {
		return 1
	}
	return 0
}
