package dbf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randConstrained(rng *rand.Rand, maxP int64) Task {
	p := 2 + rng.Int63n(maxP-1)
	c := 1 + rng.Int63n(p)
	d := c + rng.Int63n(p-c+1)
	return Task{WCET: c, Deadline: d, Period: p}
}

// TestApproxDBFOneSidedErrorFuzz is the differential fuzz of the k-point
// linearization against the exact demand bound function: across random
// constrained sets, times and depths, ApproxDBF must over-approximate
// (never under — that is what makes approximate-accept sound) and stay
// within the Albers–Slomka (k+1)/k factor of the exact value, and the
// exact DBF must be monotone in t.
func TestApproxDBFOneSidedErrorFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(8)
		s := make(Set, n)
		for i := range s {
			s[i] = randConstrained(rng, 1000)
		}
		k := 1 + rng.Intn(8)
		factor := float64(k+1) / float64(k)
		var maxT int64
		for _, tk := range s {
			if end := tk.Deadline + int64(k+2)*tk.Period; end > maxT {
				maxT = end
			}
		}
		prev := int64(0)
		for _, tt := range sampleTimes(rng, s, k, maxT) {
			exact := s.DBF(tt)
			approx := s.ApproxDBF(tt, k)
			if exact == 0 {
				if approx != 0 {
					t.Fatalf("trial %d t=%d: exact 0 but approx %v", trial, tt, approx)
				}
				continue
			}
			fe := float64(exact)
			if approx < fe*(1-1e-9) {
				t.Fatalf("trial %d t=%d k=%d: approx %v under-approximates exact %d", trial, tt, k, approx, exact)
			}
			if approx > fe*factor*(1+1e-9) {
				t.Fatalf("trial %d t=%d k=%d: approx %v exceeds (k+1)/k bound %v of exact %d", trial, tt, k, approx, fe*factor, exact)
			}
			if exact < prev {
				t.Fatalf("trial %d t=%d: DBF not monotone (%d after %d)", trial, tt, exact, prev)
			}
			prev = exact
		}
	}
}

// sampleTimes yields an ascending mix of exact deadline checkpoints,
// their neighbors, and random times up to maxT.
func sampleTimes(rng *rand.Rand, s Set, k int, maxT int64) []int64 {
	var ts []int64
	for _, tk := range s {
		tt := tk.Deadline
		for step := 0; step < k+2; step++ {
			ts = append(ts, tt-1, tt, tt+1)
			tt += tk.Period
		}
	}
	for i := 0; i < 16; i++ {
		ts = append(ts, 1+rng.Int63n(maxT))
	}
	out := ts[:0]
	for _, tt := range ts {
		if tt > 0 {
			out = append(out, tt)
		}
	}
	sortInt64(out)
	return out
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestDBFSaturatesOnOverflow pins the guarded-multiply clamp: a demand
// that exceeds int64 range reports MaxInt64 instead of wrapping.
func TestDBFSaturatesOnOverflow(t *testing.T) {
	tk := Task{WCET: 1 << 40, Deadline: 1 << 40, Period: 1 << 40}
	s := Set{tk, tk} // each task's demand ≈ t; the sum exceeds int64 range
	if got := s.DBF(math.MaxInt64); got != math.MaxInt64 {
		t.Fatalf("DBF = %d, want saturation at MaxInt64", got)
	}
	if _, ok := s.dbfChecked(math.MaxInt64); ok {
		t.Fatal("dbfChecked reported an overflowed demand as exact")
	}
	if got := s.DBF(1 << 41); got != 1<<42 {
		t.Fatalf("in-range DBF = %d, want %d", got, int64(1)<<42)
	}
}

// TestCheckDemandOverflow drives the checkpoint scan into int64 demand
// overflow and expects the typed error, not a verdict.
func TestCheckDemandOverflow(t *testing.T) {
	tk := Task{WCET: 1 << 50, Deadline: 1 << 50, Period: 1 << 50}
	s := Set{tk, tk} // accumulated demand crosses int64 range within ~2^13 checkpoints
	if _, err := checkDemand(s, 1e30, math.MaxInt64-1); !errors.Is(err, ErrDemandOverflow) {
		t.Fatalf("err = %v, want ErrDemandOverflow", err)
	}
}

// TestFeasibleEDFHyperperiodOverflow: utilization exactly at the speed
// over near-coprime ~2^39 periods forces the hyperperiod fallback, whose
// lcm overflows the guarded multiply into ErrHorizonTooLarge.
func TestFeasibleEDFHyperperiodOverflow(t *testing.T) {
	p1 := int64(1)<<39 + 1
	p2 := int64(1)<<39 - 1
	t1 := Task{WCET: 1 << 30, Deadline: (p1 + 1) / 2, Period: p1}
	t2 := Task{WCET: 1 << 30, Deadline: (p2 + 1) / 2, Period: p2}
	speed := t1.Utilization() + t2.Utilization()
	if _, err := FeasibleEDF(Set{t1, t2}, speed); !errors.Is(err, ErrHorizonTooLarge) {
		t.Fatalf("err = %v, want ErrHorizonTooLarge", err)
	}
}

// TestTieredFeasibleEDFDifferential: the single-shot tiered pipeline
// must agree with the exact test — verdict and error — on random
// constrained sets at every depth, and report a coherent deciding tier.
func TestTieredFeasibleEDFDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(10)
		s := make(Set, n)
		for i := range s {
			p := int64(4) << rng.Intn(5)
			c := 1 + rng.Int63n(p)
			d := c + rng.Int63n(p-c+1)
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		speed := float64(1+rng.Intn(24)) / 4
		k := rng.Intn(9)
		wantOK, wantErr := FeasibleEDF(s, speed)
		gotOK, tier, gotErr := TieredFeasibleEDF(s, speed, k)
		if (wantErr == nil) != (gotErr == nil) || !errors.Is(gotErr, wantErr) && wantErr != nil {
			t.Fatalf("trial %d: err = %v, want %v", trial, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if gotOK != wantOK {
			t.Fatalf("trial %d (n=%d speed=%v k=%d): tiered = %v, exact = %v", trial, n, speed, k, gotOK, wantOK)
		}
		if k < 1 && tier != TierExact {
			t.Fatalf("trial %d: k=%d decided at tier %v, want exact", trial, k, tier)
		}
		if tier < TierDensity || tier > TierExact {
			t.Fatalf("trial %d: bad tier %v", trial, tier)
		}
	}
}

// TestTierString pins the metric label spellings the service exports.
func TestTierString(t *testing.T) {
	want := map[Tier]string{TierDensity: "density", TierApprox: "dbf_approx", TierExact: "dbf_exact"}
	for tier, s := range want {
		if got := tier.String(); got != s {
			t.Fatalf("Tier(%d).String() = %q, want %q", int(tier), got, s)
		}
	}
}
