// Package dbf extends the feasibility machinery to constrained-deadline
// sporadic tasks (C ≤ D ≤ P), the generalization the paper's related
// work ([4], [7] — Baruah & Fisher; Chen & Chakraborty) studies.
//
// For implicit deadlines the EDF test collapses to Σw ≤ s; with D < P it
// becomes processor-demand analysis: EDF schedules the set on a speed-s
// machine iff the demand bound function
//
//	dbf(t) = Σ_i max(0, ⌊(t − D_i)/P_i⌋ + 1)·C_i
//
// never exceeds s·t. The test checks all deadline checkpoints up to a
// bounded horizon; ApproxFeasibleEDF uses the k-step approximate dbf
// (exact for the first k jobs of each task, linear beyond), which is the
// classic (1+1/k)-approximate test.
//
// FirstFit runs the paper's partitioning algorithm with DBF admission —
// the natural constrained-deadline extension of the §III algorithm.
package dbf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"partfeas/internal/machine"
)

// Task is a constrained-deadline sporadic task: jobs need C time units
// (at unit speed), are released at least P apart, and must finish within
// D of release, with C ≤ D ≤ P.
type Task struct {
	Name     string
	WCET     int64
	Deadline int64
	Period   int64
}

// Validate reports whether the task is well-formed and constrained.
func (t Task) Validate() error {
	if t.WCET <= 0 {
		return fmt.Errorf("dbf: task %q: WCET %d must be positive", t.Name, t.WCET)
	}
	if t.Deadline < t.WCET {
		return fmt.Errorf("dbf: task %q: deadline %d < WCET %d", t.Name, t.Deadline, t.WCET)
	}
	if t.Period < t.Deadline {
		return fmt.Errorf("dbf: task %q: period %d < deadline %d (constrained model)", t.Name, t.Period, t.Deadline)
	}
	return nil
}

// Utilization returns C/P.
func (t Task) Utilization() float64 { return float64(t.WCET) / float64(t.Period) }

// Density returns C/D, the utilization's constrained-deadline analogue.
func (t Task) Density() float64 { return float64(t.WCET) / float64(t.Deadline) }

// Set is a collection of constrained-deadline tasks.
type Set []Task

// Validate checks every task.
func (s Set) Validate() error {
	if len(s) == 0 {
		return errors.New("dbf: empty task set")
	}
	for i, t := range s {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("dbf: task %d: %w", i, err)
		}
	}
	return nil
}

// TotalUtilization returns Σ C_i/P_i.
func (s Set) TotalUtilization() float64 {
	u := 0.0
	for _, t := range s {
		u += t.Utilization()
	}
	return u
}

// TotalDensity returns Σ C_i/D_i.
func (s Set) TotalDensity() float64 {
	d := 0.0
	for _, t := range s {
		d += t.Density()
	}
	return d
}

// DBF returns the demand bound function at time t: the maximal work that
// can both be released and be due within any window of length t. Demand
// beyond int64 range saturates at math.MaxInt64 rather than wrapping, so
// the result stays monotone in t; callers that must distinguish genuine
// demand from saturation use dbfChecked.
func (s Set) DBF(t int64) int64 {
	d, ok := s.dbfChecked(t)
	if !ok {
		return math.MaxInt64
	}
	return d
}

// dbfChecked is DBF with overflow detection: ok is false when the exact
// demand does not fit in int64 (jobs·C or the running sum overflows).
func (s Set) dbfChecked(t int64) (demand int64, ok bool) {
	for _, tk := range s {
		if t < tk.Deadline {
			continue
		}
		jobs := (t-tk.Deadline)/tk.Period + 1
		if jobs > math.MaxInt64/tk.WCET {
			return 0, false
		}
		d := jobs * tk.WCET
		if demand > math.MaxInt64-d {
			return 0, false
		}
		demand += d
	}
	return demand, true
}

// ApproxDBF returns the k-step approximate demand bound: exact for each
// task's first k jobs, then the linear upper bound C + w·(t − D). It
// upper-bounds DBF for all t, so acceptance under ApproxDBF implies
// acceptance under DBF.
func (s Set) ApproxDBF(t int64, k int) float64 {
	if k < 1 {
		k = 1
	}
	demand := 0.0
	for _, tk := range s {
		if t < tk.Deadline {
			continue
		}
		switchPoint := tk.Deadline + int64(k-1)*tk.Period
		if t < switchPoint {
			jobs := (t-tk.Deadline)/tk.Period + 1
			demand += float64(jobs * tk.WCET)
		} else {
			demand += float64(tk.WCET) + tk.Utilization()*float64(t-tk.Deadline)
		}
	}
	return demand
}

// maxCheckpoints bounds the number of deadline checkpoints FeasibleEDF
// will enumerate before giving up.
const maxCheckpoints = 5_000_000

// ErrHorizonTooLarge is returned when the analysis horizon needs more
// checkpoints than the budget allows (utilization too close to capacity
// with wildly incommensurate periods).
var ErrHorizonTooLarge = errors.New("dbf: analysis horizon too large")

// ErrDemandOverflow is returned when the exact demand at a checkpoint
// exceeds int64 range, so the test cannot answer without a wrong value.
var ErrDemandOverflow = errors.New("dbf: demand exceeds int64 range")

// FeasibleEDF decides exactly whether EDF schedules the set on one
// machine of the given speed, via processor-demand analysis over all
// deadline checkpoints up to the La bound
//
//	L = max_i(D_i, (Σ_i (P_i − D_i)·w_i) / (s − U)).
//
// Total utilization above the speed is immediately infeasible; exactly
// at the speed, the implicit-deadline subcase (D = P for all tasks) is
// feasible and everything else falls back to checking up to the maximum
// deadline-adjusted hyperperiod if affordable.
func FeasibleEDF(s Set, speed float64) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return false, fmt.Errorf("dbf: speed %v must be positive and finite", speed)
	}
	u := s.TotalUtilization()
	if u > speed*(1+1e-12) {
		return false, nil
	}
	implicit := true
	var maxD int64
	for _, t := range s {
		if t.Deadline != t.Period {
			implicit = false
		}
		if t.Deadline > maxD {
			maxD = t.Deadline
		}
	}
	if implicit {
		return u <= speed*(1+1e-12), nil
	}
	var horizon int64
	if u < speed*(1-1e-9) {
		num := 0.0
		for _, t := range s {
			num += float64(t.Period-t.Deadline) * t.Utilization()
		}
		la := num / (speed - u)
		// Guard the float→int64 conversion: for co-prime large periods at
		// utilizations close to the speed, la can exceed int64 range, and
		// int64(huge float) is implementation-defined garbage. Same guarded
		// bound as the hyperperiod branch below.
		if la >= float64(1<<62) {
			return false, ErrHorizonTooLarge
		}
		horizon = int64(math.Ceil(la))
		if horizon < maxD {
			horizon = maxD
		}
	} else {
		// U == speed: fall back to one hyperperiod + max deadline.
		hp := int64(1)
		for _, t := range s {
			g := gcd(hp, t.Period)
			if q := hp / g; t.Period > (1<<62)/q {
				return false, ErrHorizonTooLarge
			}
			hp = hp / g * t.Period
		}
		if hp > (1<<62)-maxD {
			return false, ErrHorizonTooLarge
		}
		horizon = hp + maxD
	}
	return checkDemand(s, speed, horizon)
}

// checkDemand enumerates absolute deadlines t ≤ horizon and verifies
// dbf(t) ≤ speed·t at each.
func checkDemand(s Set, speed float64, horizon int64) (bool, error) {
	// Merge the per-task deadline streams D_i, D_i+P_i, … with a simple
	// next-checkpoint scan (heap-free; n is small).
	next := make([]int64, len(s))
	for i, t := range s {
		next[i] = t.Deadline
	}
	checked := 0
	for {
		// Earliest unchecked checkpoint.
		t := int64(math.MaxInt64)
		for i := range next {
			if next[i] < t {
				t = next[i]
			}
		}
		if t > horizon || t == math.MaxInt64 {
			return true, nil
		}
		d, ok := s.dbfChecked(t)
		if !ok {
			return false, ErrDemandOverflow
		}
		if float64(d) > speed*float64(t)*(1+1e-12) {
			return false, nil
		}
		for i, tk := range s {
			if next[i] == t {
				next[i] += tk.Period
			}
		}
		checked++
		if checked > maxCheckpoints {
			return false, ErrHorizonTooLarge
		}
	}
}

// ApproxFeasibleEDF is the k-step approximate test: it checks the exact
// demand at each task's first k deadlines and the linear bound beyond.
// It never accepts an infeasible set (ApproxDBF ≥ DBF); it may reject
// feasible sets by a factor at most (1 + 1/k) in speed.
func ApproxFeasibleEDF(s Set, speed float64, k int) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return false, fmt.Errorf("dbf: speed %v must be positive and finite", speed)
	}
	if k < 1 {
		k = 1
	}
	u := s.TotalUtilization()
	if u > speed*(1+1e-12) {
		return false, nil
	}
	// Checkpoints: each task's first k deadlines (beyond them the
	// approximate dbf is linear with slope ≤ Σw ≤ speed, so if it holds
	// at every switch point it holds forever).
	var points []int64
	for _, t := range s {
		for j := 0; j < k; j++ {
			points = append(points, t.Deadline+int64(j)*t.Period)
		}
	}
	sort.Slice(points, func(a, b int) bool { return points[a] < points[b] })
	for _, t := range points {
		if s.ApproxDBF(t, k) > speed*float64(t)*(1+1e-12) {
			return false, nil
		}
	}
	return true, nil
}

// FirstFit runs the paper's partitioning algorithm with DBF admission:
// tasks in non-increasing density order, machines in non-decreasing
// speed order, first machine whose accumulated set stays EDF-feasible at
// speed α·s. The exact test runs per admission when k <= 0; otherwise
// the k-step approximate test.
func FirstFit(s Set, p machine.Platform, alpha float64, k int) (feasible bool, assignment []int, err error) {
	if err := s.Validate(); err != nil {
		return false, nil, err
	}
	if err := p.Validate(); err != nil {
		return false, nil, fmt.Errorf("dbf: %w", err)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return false, nil, fmt.Errorf("dbf: alpha %v must be positive", alpha)
	}
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := s[order[a]].Density(), s[order[b]].Density()
		if da != db {
			return da > db
		}
		return s[order[a]].Deadline < s[order[b]].Deadline
	})
	mOrder := make([]int, len(p))
	for j := range mOrder {
		mOrder[j] = j
	}
	sort.SliceStable(mOrder, func(a, b int) bool { return p[mOrder[a]].Speed < p[mOrder[b]].Speed })

	assignment = make([]int, len(s))
	for i := range assignment {
		assignment[i] = -1
	}
	perMachine := make([]Set, len(p))
	for _, ti := range order {
		placed := false
		for _, mj := range mOrder {
			candidate := append(append(Set{}, perMachine[mj]...), s[ti])
			var ok bool
			var aerr error
			if k <= 0 {
				ok, aerr = FeasibleEDF(candidate, alpha*p[mj].Speed)
			} else {
				ok, aerr = ApproxFeasibleEDF(candidate, alpha*p[mj].Speed, k)
			}
			if aerr != nil {
				return false, nil, aerr
			}
			if ok {
				perMachine[mj] = candidate
				assignment[ti] = mj
				placed = true
				break
			}
		}
		if !placed {
			return false, assignment, nil
		}
	}
	return true, assignment, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
