package dbf

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/rational"
)

func TestValidateArbitrary(t *testing.T) {
	ok := Task{WCET: 2, Deadline: 10, Period: 4} // D > P allowed
	if err := ok.ValidateArbitrary(); err != nil {
		t.Errorf("D > P rejected: %v", err)
	}
	if err := ok.Validate(); err == nil {
		t.Error("constrained Validate must still reject D > P")
	}
	bad := Task{WCET: 3, Deadline: 2, Period: 4}
	if err := bad.ValidateArbitrary(); err == nil {
		t.Error("D < C accepted")
	}
	if err := (Set{}).ValidateArbitrary(); err == nil {
		t.Error("empty set accepted")
	}
}

func TestBusyPeriod(t *testing.T) {
	// One task C=1, P=2 on speed 1: busy period = 1.
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	bp, ok := s.busyPeriod(1)
	if !ok || math.Abs(bp-1) > 1e-9 {
		t.Errorf("busy period = %v (%v), want 1", bp, ok)
	}
	// Two tasks (1,2), (1,3): U = 5/6; W(1)=2, W(2)=2 → bp=2.
	s2 := Set{{WCET: 1, Deadline: 2, Period: 2}, {WCET: 1, Deadline: 3, Period: 3}}
	bp, ok = s2.busyPeriod(1)
	if !ok || math.Abs(bp-2) > 1e-9 {
		t.Errorf("busy period = %v (%v), want 2", bp, ok)
	}
	// Overloaded: no finite busy period.
	if _, ok := (Set{{WCET: 3, Deadline: 3, Period: 2}}).busyPeriod(1); ok {
		t.Error("overloaded set reported a busy period")
	}
}

func TestFeasibleEDFArbitraryDGreaterThanP(t *testing.T) {
	// C=3, D=6, P=4: U = 0.75, feasible under EDF on speed 1 although
	// consecutive jobs overlap.
	s := Set{{WCET: 3, Deadline: 6, Period: 4}}
	ok, err := FeasibleEDFArbitrary(s, 1)
	if err != nil || !ok {
		t.Errorf("D>P single task: %v (%v), want feasible", ok, err)
	}
	// U = 1.0 exactly with relaxed deadlines: feasible.
	s2 := Set{
		{WCET: 3, Deadline: 6, Period: 4},
		{WCET: 2, Deadline: 12, Period: 8},
	}
	ok, err = FeasibleEDFArbitrary(s2, 1)
	if err != nil || !ok {
		t.Errorf("U=1 arbitrary: %v (%v), want feasible", ok, err)
	}
	// Tight deadlines force a demand violation: dbf(3) = 5 > 3.
	s3 := Set{
		{WCET: 3, Deadline: 3, Period: 4},
		{WCET: 2, Deadline: 3, Period: 8},
	}
	ok, err = FeasibleEDFArbitrary(s3, 1)
	if err != nil || ok {
		t.Errorf("dbf(3)=5 > 3: %v (%v), want infeasible", ok, err)
	}
}

func TestFeasibleEDFArbitraryValidation(t *testing.T) {
	if _, err := FeasibleEDFArbitrary(Set{}, 1); err == nil {
		t.Error("empty set accepted")
	}
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	if _, err := FeasibleEDFArbitrary(s, 0); err == nil {
		t.Error("zero speed accepted")
	}
	over := Set{{WCET: 3, Deadline: 9, Period: 2}}
	ok, err := FeasibleEDFArbitrary(over, 1)
	if err != nil || ok {
		t.Errorf("U>1: %v (%v)", ok, err)
	}
}

func TestDMArbitraryOverloadedLevel(t *testing.T) {
	// U = 0.5 + 0.6 = 1.1 > 1: the low task's level is overloaded and its
	// response is unbounded.
	s := Set{
		{Name: "hp", WCET: 2, Deadline: 4, Period: 4},
		{Name: "lo", WCET: 3, Deadline: 8, Period: 5},
	}
	rts, err := ResponseTimesDMArbitrary(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rts[1], 1) {
		t.Errorf("overloaded level should be Inf, got %v", rts[1])
	}
	// Feasible variant.
	s2 := Set{
		{Name: "hp", WCET: 2, Deadline: 4, Period: 4},
		{Name: "lo", WCET: 2, Deadline: 8, Period: 5},
	}
	ok, err := FeasibleDMArbitrary(s2, 1)
	if err != nil || !ok {
		t.Errorf("feasible variant: %v (%v)", ok, err)
	}
	if _, err := ResponseTimesDMArbitrary(Set{}, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := ResponseTimesDMArbitrary(s2, -1); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestDMArbitraryMatchesConstrainedOnConstrainedSets(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(12))
			d := int64(1 + rng.Intn(int(p)))
			c := int64(1 + rng.Intn(int(min64(d, p))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		a, err := FeasibleDM(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FeasibleDMArbitrary(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: constrained RTA %v, arbitrary RTA %v for %v", trial, a, b, s)
		}
	}
}

// Arbitrary-deadline analyses never accept a set the simulator shows
// missing (soundness of accept over several hyperperiods).
func TestArbitraryAnalysesMatchSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(197))
	decisive := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(4))
			d := c + rng.Int63n(2*p) // may exceed P
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.ValidateArbitrary() != nil {
			continue
		}
		hp := int64(1)
		ok := true
		for _, tk := range s {
			g := gcd(hp, tk.Period)
			hp = hp / g * tk.Period
			if hp > 5_000 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		horizon := 4 * hp
		edfAnalysis, err := FeasibleEDFArbitrary(s, 1)
		if err != nil {
			continue
		}
		edfMisses, _, err := SimulateEDF(s, rational.One(), horizon)
		if err != nil {
			t.Fatal(err)
		}
		if edfAnalysis && edfMisses > 0 {
			t.Fatalf("trial %d: EDF analysis accepts but sim misses %d for %v", trial, edfMisses, s)
		}
		dmAnalysis, err := FeasibleDMArbitrary(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		dmMisses, _, err := SimulateDM(s, rational.One(), horizon)
		if err != nil {
			t.Fatal(err)
		}
		if dmAnalysis && dmMisses > 0 {
			t.Fatalf("trial %d: DM analysis accepts but sim misses %d for %v", trial, dmMisses, s)
		}
		// DM-accept implies EDF-accept (EDF optimal on one machine).
		if dmAnalysis && !edfAnalysis {
			t.Fatalf("trial %d: DM accepts but EDF analysis rejects for %v", trial, s)
		}
		decisive++
	}
	if decisive < 100 {
		t.Errorf("only %d decisive trials", decisive)
	}
}
