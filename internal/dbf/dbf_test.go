package dbf

import (
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		tk   Task
		ok   bool
	}{
		{"implicit", Task{WCET: 1, Deadline: 4, Period: 4}, true},
		{"constrained", Task{WCET: 1, Deadline: 2, Period: 4}, true},
		{"zero wcet", Task{WCET: 0, Deadline: 2, Period: 4}, false},
		{"deadline < wcet", Task{WCET: 3, Deadline: 2, Period: 4}, false},
		{"arbitrary deadline (D > P) rejected", Task{WCET: 1, Deadline: 6, Period: 4}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.tk.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate = %v, ok = %v", err, tc.ok)
			}
		})
	}
	if err := (Set{}).Validate(); err == nil {
		t.Error("empty set should fail")
	}
}

func TestDensityAndUtilization(t *testing.T) {
	tk := Task{WCET: 2, Deadline: 4, Period: 8}
	if tk.Utilization() != 0.25 || tk.Density() != 0.5 {
		t.Errorf("u=%v d=%v", tk.Utilization(), tk.Density())
	}
	s := Set{tk, tk}
	if s.TotalUtilization() != 0.5 || s.TotalDensity() != 1.0 {
		t.Errorf("U=%v Δ=%v", s.TotalUtilization(), s.TotalDensity())
	}
}

func TestDBFValues(t *testing.T) {
	// Task (C=2, D=4, P=8): dbf jumps by 2 at t = 4, 12, 20, …
	s := Set{{WCET: 2, Deadline: 4, Period: 8}}
	cases := []struct {
		t    int64
		want int64
	}{
		{0, 0}, {3, 0}, {4, 2}, {11, 2}, {12, 4}, {20, 6},
	}
	for _, tc := range cases {
		if got := s.DBF(tc.t); got != tc.want {
			t.Errorf("DBF(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestApproxDBFUpperBoundsDBF(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		s := make(Set, n)
		for i := range s {
			p := int64(4 + rng.Intn(40))
			d := int64(2 + rng.Intn(int(p-1)))
			c := int64(1 + rng.Intn(int(min64(d, p))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		for _, k := range []int{1, 2, 4} {
			for t64 := int64(0); t64 < 200; t64 += 3 {
				exact := float64(s.DBF(t64))
				approx := s.ApproxDBF(t64, k)
				if approx < exact-1e-9 {
					t.Fatalf("trial %d: ApproxDBF(%d, k=%d) = %v < DBF = %v for %v",
						trial, t64, k, approx, exact, s)
				}
			}
		}
	}
}

func TestFeasibleEDFImplicitMatchesUtilization(t *testing.T) {
	s := Set{
		{WCET: 1, Deadline: 2, Period: 2},
		{WCET: 1, Deadline: 3, Period: 3},
	}
	ok, err := FeasibleEDF(s, 1)
	if err != nil || !ok {
		t.Errorf("U = 5/6 implicit: %v (%v)", ok, err)
	}
	ok, err = FeasibleEDF(s, 0.8)
	if err != nil || ok {
		t.Errorf("U = 5/6 on speed 0.8: %v (%v), want infeasible", ok, err)
	}
}

func TestFeasibleEDFConstrainedTighter(t *testing.T) {
	// (C=2, D=2, P=4) twice: density 2, utilization 1. At t=2, demand 4 >
	// 2·1: infeasible on speed 1 even though U = 1.
	s := Set{
		{WCET: 2, Deadline: 2, Period: 4},
		{WCET: 2, Deadline: 2, Period: 4},
	}
	ok, err := FeasibleEDF(s, 1)
	if err != nil || ok {
		t.Errorf("constrained overload: %v (%v), want infeasible", ok, err)
	}
	ok, err = FeasibleEDF(s, 2)
	if err != nil || !ok {
		t.Errorf("speed 2: %v (%v), want feasible", ok, err)
	}
}

func TestFeasibleEDFValidation(t *testing.T) {
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	if _, err := FeasibleEDF(Set{}, 1); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := FeasibleEDF(s, 0); err == nil {
		t.Error("zero speed should fail")
	}
	if _, err := ApproxFeasibleEDF(s, 0, 2); err == nil {
		t.Error("approx zero speed should fail")
	}
	if _, err := ApproxFeasibleEDF(Set{}, 1, 2); err == nil {
		t.Error("approx empty set should fail")
	}
}

// Approximate accept implies exact accept (the approximation is an upper
// bound on demand), and exact behaviour matches simulation.
func TestApproxSoundExactMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	decisive := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(12))
			d := int64(1 + rng.Intn(int(p)))
			c := int64(1 + rng.Intn(int(min64(d, p))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		exact, err := FeasibleEDF(s, 1)
		if err != nil {
			continue
		}
		for _, k := range []int{1, 2, 4} {
			approx, err := ApproxFeasibleEDF(s, 1, k)
			if err != nil {
				t.Fatal(err)
			}
			if approx && !exact {
				t.Fatalf("trial %d: approximate test (k=%d) accepted an infeasible set %v", trial, k, s)
			}
		}
		// Simulate one hyperperiod + max deadline.
		hp := int64(1)
		var maxD int64
		okHP := true
		for _, tk := range s {
			g := gcd(hp, tk.Period)
			hp = hp / g * tk.Period
			if hp > 10_000 {
				okHP = false
				break
			}
			if tk.Deadline > maxD {
				maxD = tk.Deadline
			}
		}
		if !okHP {
			continue
		}
		misses, _, err := SimulateEDF(s, rational.One(), hp+maxD)
		if err != nil {
			t.Fatal(err)
		}
		if exact != (misses == 0) {
			t.Fatalf("trial %d: analysis=%v but sim misses=%d for %v", trial, exact, misses, s)
		}
		decisive++
	}
	if decisive < 100 {
		t.Errorf("only %d decisive trials", decisive)
	}
}

func TestFirstFitConstrained(t *testing.T) {
	p := machine.New(1, 1)
	// Two high-density tasks that must be separated.
	s := Set{
		{Name: "a", WCET: 2, Deadline: 2, Period: 8},
		{Name: "b", WCET: 2, Deadline: 2, Period: 8},
		{Name: "c", WCET: 1, Deadline: 8, Period: 8},
	}
	ok, asg, err := FirstFit(s, p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("expected feasible, asg=%v", asg)
	}
	if asg[0] == asg[1] {
		t.Errorf("density-2 pair not separated: %v", asg)
	}
	// Infeasible: three density-1 tight tasks on two machines.
	s2 := Set{
		{WCET: 2, Deadline: 2, Period: 8},
		{WCET: 2, Deadline: 2, Period: 8},
		{WCET: 2, Deadline: 2, Period: 8},
	}
	ok, _, err = FirstFit(s2, p, 1, 0)
	if err != nil || ok {
		t.Errorf("three tight tasks on two machines: ok=%v (%v)", ok, err)
	}
	// …but augmentation α=2 packs two per machine (demand 4 ≤ 2·2 at t=2).
	ok, _, err = FirstFit(s2, p, 2, 0)
	if err != nil || !ok {
		t.Errorf("α=2: ok=%v (%v), want feasible", ok, err)
	}
}

func TestFirstFitApproxNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6)
		s := make(Set, n)
		for i := range s {
			p := int64(4 + rng.Intn(20))
			d := int64(2 + rng.Intn(int(p-1)))
			c := int64(1 + rng.Intn(int(min64(d, 6))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		p := machine.New(1, 2)
		okExact, _, err := FirstFit(s, p, 1, 0)
		if err != nil {
			continue
		}
		okApprox, _, err := FirstFit(s, p, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if okApprox && !okExact {
			t.Fatalf("trial %d: approximate admission accepted, exact rejected: %v", trial, s)
		}
	}
}

func TestFirstFitValidation(t *testing.T) {
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	if _, _, err := FirstFit(Set{}, machine.New(1), 1, 0); err == nil {
		t.Error("empty set should fail")
	}
	if _, _, err := FirstFit(s, machine.Platform{}, 1, 0); err == nil {
		t.Error("empty platform should fail")
	}
	if _, _, err := FirstFit(s, machine.New(1), -1, 0); err == nil {
		t.Error("negative alpha should fail")
	}
}

func TestSimulateEDFValidation(t *testing.T) {
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	if _, _, err := SimulateEDF(Set{}, rational.One(), 10); err == nil {
		t.Error("empty set should fail")
	}
	if _, _, err := SimulateEDF(s, rational.Zero(), 10); err == nil {
		t.Error("zero speed should fail")
	}
	if _, _, err := SimulateEDF(s, rational.One(), 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func BenchmarkFeasibleEDF(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := make(Set, 12)
	for i := range s {
		p := int64(10 + rng.Intn(100))
		d := int64(5 + rng.Intn(int(p-4)))
		c := int64(1 + rng.Intn(4))
		s[i] = Task{WCET: c, Deadline: d, Period: p}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FeasibleEDF(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}
