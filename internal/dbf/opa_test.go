package dbf

import (
	"math/rand"
	"testing"

	"partfeas/internal/machine"
)

func TestAssignOPAValidation(t *testing.T) {
	if _, _, err := AssignOPA(Set{}, 1); err == nil {
		t.Error("empty set accepted")
	}
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	if _, _, err := AssignOPA(s, 0); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestAssignOPASimple(t *testing.T) {
	s := Set{
		{Name: "a", WCET: 1, Deadline: 2, Period: 4},
		{Name: "b", WCET: 2, Deadline: 8, Period: 8},
	}
	order, ok, err := AssignOPA(s, 1)
	if err != nil || !ok {
		t.Fatalf("OPA: %v (%v)", ok, err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// The tight-deadline task must end up with the higher priority here:
	// at the lowest level its response behind b (2 + 1 = 3 > 2) fails.
	if order[0] != 0 {
		t.Errorf("order = %v, want task 0 highest", order)
	}
}

func TestOPAInfeasible(t *testing.T) {
	s := Set{
		{WCET: 2, Deadline: 2, Period: 4},
		{WCET: 2, Deadline: 2, Period: 4},
	}
	ok, err := FeasibleOPA(s, 1)
	if err != nil || ok {
		t.Errorf("simultaneous tight pair: %v (%v), want infeasible", ok, err)
	}
}

// OPA accepts at least everything DM accepts (optimality, one direction).
func TestOPADominatesDM(t *testing.T) {
	rng := rand.New(rand.NewSource(199))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(4))
			d := c + rng.Int63n(2*p)
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.ValidateArbitrary() != nil {
			continue
		}
		dm, err := FeasibleDMArbitrary(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !dm {
			continue
		}
		opa, err := FeasibleOPA(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !opa {
			t.Fatalf("trial %d: DM feasible but OPA not — contradicts optimality — for %v", trial, s)
		}
	}
}

// On some arbitrary-deadline instance OPA strictly beats DM — the classic
// reason DM is not optimal when D > P.
func TestOPABeatsDMSomewhere(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	found := false
	for trial := 0; trial < 3000 && !found; trial++ {
		n := 2 + rng.Intn(2)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(4))
			d := c + rng.Int63n(3*p)
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.ValidateArbitrary() != nil {
			continue
		}
		dm, err := FeasibleDMArbitrary(s, 1)
		if err != nil {
			continue
		}
		opa, err := FeasibleOPA(s, 1)
		if err != nil {
			continue
		}
		if opa && !dm {
			found = true
		}
		if dm && !opa {
			t.Fatalf("trial %d: DM feasible but OPA not for %v", trial, s)
		}
	}
	if !found {
		t.Log("no OPA-beats-DM witness found in 3000 draws (rare but not an error)")
	}
}

// An OPA-returned order is actually feasible when replayed: every task's
// worst response at its assigned level meets its deadline.
func TestOPAOrderIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(10))
			c := int64(1 + rng.Intn(3))
			d := c + rng.Int63n(2*p)
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.ValidateArbitrary() != nil {
			continue
		}
		order, ok, err := AssignOPA(s, 1)
		if err != nil || !ok {
			continue
		}
		for rank, i := range order {
			r, err := worstResponseAtLowest(s, order[:rank], i, 1)
			if err != nil {
				t.Fatal(err)
			}
			if r > float64(s[i].Deadline) {
				t.Fatalf("trial %d: OPA order %v infeasible at rank %d for %v", trial, order, rank, s)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Errorf("only %d feasible orders checked", checked)
	}
}

func TestFirstFitOPA(t *testing.T) {
	p := machine.New(1, 1)
	s := Set{
		{Name: "a", WCET: 2, Deadline: 2, Period: 8},
		{Name: "b", WCET: 2, Deadline: 2, Period: 8},
		{Name: "c", WCET: 1, Deadline: 16, Period: 8}, // D > P
	}
	ok, asg, err := FirstFitOPA(s, p, 1)
	if err != nil || !ok {
		t.Fatalf("FirstFitOPA: %v (%v)", ok, err)
	}
	if asg[0] == asg[1] {
		t.Errorf("tight pair not separated: %v", asg)
	}
	if _, _, err := FirstFitOPA(Set{}, p, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := FirstFitOPA(s, machine.Platform{}, 1); err == nil {
		t.Error("empty platform accepted")
	}
	if _, _, err := FirstFitOPA(s, p, 0); err == nil {
		t.Error("zero alpha accepted")
	}
}

// FF-OPA accepts whatever FF-DM accepts on constrained sets (OPA admission
// is at least as strong per machine).
func TestFirstFitOPADominatesDM(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		s := make(Set, n)
		for i := range s {
			p := int64(4 + rng.Intn(16))
			d := int64(2 + rng.Intn(int(p-1)))
			c := int64(1 + rng.Int63n(min64(d, 5)))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		p := machine.New(1, 2)
		dmOK, _, err := FirstFitDM(s, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !dmOK {
			continue
		}
		opaOK, _, err := FirstFitOPA(s, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !opaOK {
			t.Fatalf("trial %d: FF-DM accepted but FF-OPA rejected %v", trial, s)
		}
	}
}
