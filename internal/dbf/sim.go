package dbf

import (
	"fmt"

	"partfeas/internal/rational"
)

// SimulateEDF replays the synchronous periodic pattern of a
// constrained-deadline set under preemptive EDF on one machine of the
// given (rational) speed, over all jobs released in [0, horizon),
// returning the number of deadline misses. It is the empirical oracle
// the processor-demand test is validated against: for constrained
// deadlines the synchronous pattern is the worst case for EDF, so zero
// misses over an horizon covering the busy period certifies the test's
// accept, and any analysis reject must reproduce a miss here when the
// horizon spans one hyperperiod.
func SimulateEDF(s Set, speed rational.Rat, horizon int64) (misses int64, jobs int64, err error) {
	return simulate(s, speed, horizon, nil)
}

// SimulateDM is SimulateEDF under deadline-monotonic preemptive fixed
// priorities — the oracle for FeasibleDM (the synchronous pattern is the
// critical instant for constrained-deadline fixed priorities too).
func SimulateDM(s Set, speed rational.Rat, horizon int64) (misses int64, jobs int64, err error) {
	if err := s.ValidateArbitrary(); err != nil {
		return 0, 0, err
	}
	order := dmOrder(s)
	rank := make([]int, len(s))
	for r, i := range order {
		rank[i] = r
	}
	return simulate(s, speed, horizon, rank)
}

// simulate runs the shared event loop; rank == nil selects EDF (earliest
// absolute deadline), otherwise static priorities by rank (lower wins).
func simulate(s Set, speed rational.Rat, horizon int64, rank []int) (misses int64, jobs int64, err error) {
	// The event loop handles the arbitrary-deadline model (several live
	// jobs per task, FIFO within a task under fixed priorities), so the
	// weaker validation suffices; constrained sets pass it a fortiori.
	if err := s.ValidateArbitrary(); err != nil {
		return 0, 0, err
	}
	if speed.Sign() <= 0 {
		return 0, 0, fmt.Errorf("dbf: speed %v must be positive", speed)
	}
	if horizon <= 0 {
		return 0, 0, fmt.Errorf("dbf: horizon %d must be positive", horizon)
	}

	type job struct {
		taskIdx   int
		deadline  rational.Rat
		remaining rational.Rat
	}
	horizonR := rational.FromInt(horizon)
	nextRelease := make([]rational.Rat, len(s))
	for i := range s {
		nextRelease[i] = rational.Zero()
	}
	var ready []*job
	now := rational.Zero()

	release := func() error {
		for i, t := range s {
			for nextRelease[i].Less(horizonR) && nextRelease[i].LessEq(now) {
				dl, err := nextRelease[i].Add(rational.FromInt(t.Deadline))
				if err != nil {
					return err
				}
				ready = append(ready, &job{taskIdx: i, deadline: dl, remaining: rational.FromInt(t.WCET)})
				jobs++
				nr, err := nextRelease[i].Add(rational.FromInt(t.Period))
				if err != nil {
					return err
				}
				nextRelease[i] = nr
			}
		}
		return nil
	}
	earliest := func() (rational.Rat, bool) {
		var best rational.Rat
		found := false
		for i := range s {
			if nextRelease[i].Less(horizonR) && (!found || nextRelease[i].Less(best)) {
				best = nextRelease[i]
				found = true
			}
		}
		return best, found
	}

	const maxEvents = 20_000_000
	for events := 0; ; events++ {
		if events > maxEvents {
			return misses, jobs, fmt.Errorf("dbf: simulation event budget exceeded")
		}
		if err := release(); err != nil {
			return misses, jobs, err
		}
		if len(ready) == 0 {
			nr, any := earliest()
			if !any {
				return misses, jobs, nil
			}
			now = nr
			continue
		}
		best := 0
		for k := 1; k < len(ready); k++ {
			if rank == nil {
				if ready[k].deadline.Less(ready[best].deadline) {
					best = k
				}
			} else if rank[ready[k].taskIdx] < rank[ready[best].taskIdx] {
				best = k
			}
		}
		j := ready[best]
		runTime, err := j.remaining.Div(speed)
		if err != nil {
			return misses, jobs, err
		}
		finish, err := now.Add(runTime)
		if err != nil {
			return misses, jobs, err
		}
		if nr, any := earliest(); any && nr.Less(finish) {
			delta, err := nr.Sub(now)
			if err != nil {
				return misses, jobs, err
			}
			work, err := delta.Mul(speed)
			if err != nil {
				return misses, jobs, err
			}
			if j.remaining, err = j.remaining.Sub(work); err != nil {
				return misses, jobs, err
			}
			now = nr
			continue
		}
		now = finish
		if j.deadline.Less(now) {
			misses++
		}
		ready = append(ready[:best], ready[best+1:]...)
	}
}
