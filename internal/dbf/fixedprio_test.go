package dbf

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/rational"
)

func TestResponseTimesDMBasic(t *testing.T) {
	// DM order by deadline: (1,2,8) before (2,5,5).
	s := Set{
		{Name: "lo", WCET: 2, Deadline: 5, Period: 5},
		{Name: "hi", WCET: 1, Deadline: 2, Period: 8},
	}
	rts, err := ResponseTimesDM(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rts[1]-1) > 1e-9 {
		t.Errorf("hi response = %v, want 1", rts[1])
	}
	// lo: 2 + ceil(R/8)*1 → 3.
	if math.Abs(rts[0]-3) > 1e-9 {
		t.Errorf("lo response = %v, want 3", rts[0])
	}
	ok, err := FeasibleDM(s, 1)
	if err != nil || !ok {
		t.Errorf("FeasibleDM = %v (%v)", ok, err)
	}
}

func TestFeasibleDMRejectsOverload(t *testing.T) {
	s := Set{
		{WCET: 2, Deadline: 2, Period: 4},
		{WCET: 2, Deadline: 2, Period: 4},
	}
	ok, err := FeasibleDM(s, 1)
	if err != nil || ok {
		t.Errorf("FeasibleDM = %v (%v), want infeasible", ok, err)
	}
	ok, err = FeasibleDM(s, 2)
	if err != nil || !ok {
		t.Errorf("speed 2: %v (%v), want feasible", ok, err)
	}
}

func TestResponseTimesDMValidation(t *testing.T) {
	if _, err := ResponseTimesDM(Set{}, 1); err == nil {
		t.Error("empty set accepted")
	}
	s := Set{{WCET: 1, Deadline: 2, Period: 2}}
	if _, err := ResponseTimesDM(s, 0); err == nil {
		t.Error("zero speed accepted")
	}
}

// DM analysis agrees with the DM simulator over one hyperperiod.
func TestDMAnalysisMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	decisive := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(12))
			d := int64(1 + rng.Intn(int(p)))
			c := int64(1 + rng.Intn(int(min64(d, p))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		hp := int64(1)
		var maxD int64
		ok := true
		for _, tk := range s {
			g := gcd(hp, tk.Period)
			hp = hp / g * tk.Period
			if hp > 10_000 {
				ok = false
				break
			}
			if tk.Deadline > maxD {
				maxD = tk.Deadline
			}
		}
		if !ok {
			continue
		}
		analysis, err := FeasibleDM(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		misses, _, err := SimulateDM(s, rational.One(), hp+maxD)
		if err != nil {
			t.Fatal(err)
		}
		if analysis != (misses == 0) {
			t.Fatalf("trial %d: DM analysis=%v, sim misses=%d for %v", trial, analysis, misses, s)
		}
		decisive++
	}
	if decisive < 100 {
		t.Errorf("only %d decisive trials", decisive)
	}
}

// EDF dominates DM: anything DM schedules, EDF schedules (EDF is optimal
// on one machine).
func TestEDFDominatesDM(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		s := make(Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(14))
			d := int64(1 + rng.Intn(int(p)))
			c := int64(1 + rng.Intn(int(min64(d, p))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		dm, err := FeasibleDM(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !dm {
			continue
		}
		edf, err := FeasibleEDF(s, 1)
		if err != nil {
			continue // horizon issues: skip
		}
		if !edf {
			t.Fatalf("trial %d: DM feasible but EDF not for %v", trial, s)
		}
	}
}

func TestFirstFitDM(t *testing.T) {
	p := machine.New(1, 1)
	s := Set{
		{Name: "a", WCET: 2, Deadline: 2, Period: 8},
		{Name: "b", WCET: 2, Deadline: 2, Period: 8},
		{Name: "c", WCET: 1, Deadline: 8, Period: 8},
	}
	ok, asg, err := FirstFitDM(s, p, 1)
	if err != nil || !ok {
		t.Fatalf("FirstFitDM: %v (%v)", ok, err)
	}
	if asg[0] == asg[1] {
		t.Errorf("tight pair not separated: %v", asg)
	}
	// Validation errors.
	if _, _, err := FirstFitDM(Set{}, p, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := FirstFitDM(s, machine.Platform{}, 1); err == nil {
		t.Error("empty platform accepted")
	}
	if _, _, err := FirstFitDM(s, p, 0); err == nil {
		t.Error("zero alpha accepted")
	}
}

// FF-EDF(DBF) dominates FF-DM on identical instances (EDF admission is
// weaker to violate).
func TestFirstFitEDFDominatesDM(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		s := make(Set, n)
		for i := range s {
			p := int64(4 + rng.Intn(20))
			d := int64(2 + rng.Intn(int(p-1)))
			c := int64(1 + rng.Intn(int(min64(d, 6))))
			s[i] = Task{WCET: c, Deadline: d, Period: p}
		}
		if s.Validate() != nil {
			continue
		}
		p := machine.New(1, 2)
		okDM, _, err := FirstFitDM(s, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !okDM {
			continue
		}
		okEDF, _, err := FirstFit(s, p, 1, 0)
		if err != nil {
			continue
		}
		if !okEDF {
			t.Fatalf("trial %d: FF-DM accepted but FF-EDF(DBF) rejected %v", trial, s)
		}
	}
}

func TestSimulateDMValidation(t *testing.T) {
	if _, _, err := SimulateDM(Set{}, rational.One(), 10); err == nil {
		t.Error("empty set accepted")
	}
}
