package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingGolden pins the mapping across process restarts: these owners
// were computed once and hard-coded, so any change to the hash, the
// point layout or the tie-break — which would strand every durable
// session on the wrong replica after a rolling restart — fails here.
func TestRingGolden(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	golden := map[string]string{
		"s-1":        "http://a:1",
		"s-2":        "http://a:1",
		"s-3":        "http://c:1",
		"session-42": "http://c:1",
		"partfeas":   "http://a:1",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want %q (hash layout changed!)", k, got, want)
		}
	}
}

// TestRingDeterminism: member order, duplicates, and rebuild must not
// affect the mapping — two coordinators configured with the same set in
// any order route identically.
func TestRingDeterminism(t *testing.T) {
	members := []string{"http://r0", "http://r1", "http://r2", "http://r3", "http://r4"}
	a := NewRing(members, 0)
	shuffled := []string{"http://r3", "http://r0", "http://r4", "http://r2", "http://r1", "http://r0"}
	b := NewRing(shuffled, 0)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("sess-%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("Owner(%q): %q (ordered) != %q (shuffled)", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingUniformity bounds the ownership skew: with DefaultVNodes every
// member's share of 50k keys must sit within ±40% of the fair share
// (measured skew is ~±12%; the band leaves margin without letting a
// collapsed member through).
func TestRingUniformity(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://replica-%d:8377", i)
		}
		r := NewRing(members, 0)
		const keys = 50000
		spread := r.Spread(keys)
		mean := float64(keys) / float64(n)
		for _, m := range members {
			got := float64(spread[m])
			if got < 0.6*mean || got > 1.4*mean {
				t.Errorf("%d members: %s owns %.0f keys, outside [%.0f, %.0f]", n, m, got, 0.6*mean, 1.4*mean)
			}
		}
	}
}

// TestRingRelocationOnAdd: adding one member to an n-ring must move
// ~1/(n+1) of keys, and every moved key must move TO the new member —
// a rebalance touches exactly the sessions the new replica takes over.
func TestRingRelocationOnAdd(t *testing.T) {
	members := []string{"http://r0", "http://r1", "http://r2", "http://r3", "http://r4"}
	before := NewRing(members, 0)
	after := before.With("http://r5")
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "http://r5" {
			t.Fatalf("key %q moved %s→%s, not to the new member", k, ob, oa)
		}
	}
	want := float64(keys) / 6
	if f := float64(moved); f < 0.5*want || f > 2*want {
		t.Errorf("add relocated %d keys, want ~%.0f (±2×)", moved, want)
	}
}

// TestRingRelocationOnRemove: removing a member must move exactly the
// keys it owned, each to a surviving member, and nothing else.
func TestRingRelocationOnRemove(t *testing.T) {
	members := []string{"http://r0", "http://r1", "http://r2", "http://r3", "http://r4"}
	before := NewRing(members, 0)
	const victim = "http://r2"
	after := before.Without(victim)
	const keys = 20000
	moved, owned := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == victim {
			owned++
		}
		if ob == oa {
			continue
		}
		moved++
		if ob != victim {
			t.Fatalf("key %q moved %s→%s though its owner stayed in the ring", k, ob, oa)
		}
		if oa == victim || !after.Has(oa) {
			t.Fatalf("key %q landed on %s, not a surviving member", k, oa)
		}
	}
	if moved != owned {
		t.Errorf("removal moved %d keys but the victim owned %d — bystanders moved", moved, owned)
	}
}

// TestRingFuzzMembership drives random join/leave sequences and checks
// the relocation invariant at every step: a membership delta of one
// member never moves a key between two surviving members.
func TestRingFuzzMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := make([]string, 12)
	for i := range pool {
		pool[i] = fmt.Sprintf("http://node-%d", i)
	}
	r := NewRing(pool[:4], 0)
	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = fmt.Sprintf("sess-%d", rng.Int63())
	}
	for step := 0; step < 40; step++ {
		m := pool[rng.Intn(len(pool))]
		var next *Ring
		if r.Has(m) && r.Size() > 1 {
			next = r.Without(m)
		} else {
			next = r.With(m)
		}
		joined := next.Size() > r.Size()
		for _, k := range keys {
			ob, oa := r.Owner(k), next.Owner(k)
			if ob == oa {
				continue
			}
			if joined && oa != m {
				t.Fatalf("step %d: join of %s moved %q from %s to %s", step, m, k, ob, oa)
			}
			if !joined && ob != m {
				t.Fatalf("step %d: leave of %s moved %q owned by %s", step, m, k, ob)
			}
		}
		r = next
	}
}

// TestRingCopyOnWrite: With/Without never mutate the receiver, and
// no-op changes return the same ring.
func TestRingCopyOnWrite(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b"}, 8)
	if r.With("http://a") != r {
		t.Error("With(existing) built a new ring")
	}
	if r.Without("http://zzz") != r {
		t.Error("Without(absent) built a new ring")
	}
	r2 := r.With("http://c")
	if r.Size() != 2 || !r2.Has("http://c") || r2.Size() != 3 {
		t.Errorf("With mutated the receiver: %v / %v", r, r2)
	}
	r3 := r2.Without("http://a")
	if !r2.Has("http://a") || r3.Has("http://a") {
		t.Error("Without mutated the receiver")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("anything"); got != "" {
		t.Errorf("empty ring owns %q", got)
	}
	if r.Size() != 0 {
		t.Errorf("empty ring size %d", r.Size())
	}
	one := r.With("http://a")
	if got := one.Owner("anything"); got != "http://a" {
		t.Errorf("single-member ring routed to %q", got)
	}
}
