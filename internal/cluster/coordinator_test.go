package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"partfeas/internal/faultinject"
	"partfeas/internal/service"
)

// ---- harness ----

type testReplica struct {
	srv *service.Server
	url string
	cfg service.Config
}

// startReplica boots one admission replica on an ephemeral loopback
// port. Durable replicas pin the bound port in cfg so a restart after
// Crash comes back at the same URL.
func startReplica(t testing.TB, durable bool) *testReplica {
	t.Helper()
	cfg := service.Config{Addr: "127.0.0.1:0", Logf: t.Logf}
	var srv *service.Server
	if durable {
		cfg.DataDir = t.TempDir()
		cfg.FsyncInterval = -1
		cfg.SnapshotEvery = -1
		var err error
		srv, err = service.NewDurable(cfg)
		if err != nil {
			t.Fatalf("replica: %v", err)
		}
	} else {
		srv = service.New(cfg)
	}
	if err := srv.Listen(); err != nil {
		t.Fatalf("replica listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	r := &testReplica{srv: srv, url: "http://" + srv.Addr(), cfg: cfg}
	r.cfg.Addr = srv.Addr()
	t.Cleanup(func() { r.shutdown() })
	return r
}

func (r *testReplica) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = r.srv.Shutdown(ctx)
}

// crash kills the replica process-style (durability abandoned, port
// released) and restart brings it back on the same URL from its log.
func (r *testReplica) crash(t testing.TB) {
	t.Helper()
	r.srv.Crash()
	r.shutdown()
}

func (r *testReplica) restart(t testing.TB) {
	t.Helper()
	srv, err := service.NewDurable(r.cfg)
	if err != nil {
		t.Fatalf("replica restart: %v", err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatalf("replica relisten: %v", err)
	}
	go func() { _ = srv.Serve() }()
	r.srv = srv
}

// startCoordinator fronts the replicas; the health loop is disabled so
// tests drive Probe deterministically.
func startCoordinator(t testing.TB, replicas ...*testReplica) *Coordinator {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.url
	}
	c := New(Config{
		Addr: "127.0.0.1:0", Replicas: urls,
		HealthInterval: -1, IDPrefix: "t", Logf: t.Logf,
	})
	if err := c.Listen(); err != nil {
		t.Fatalf("coordinator listen: %v", err)
	}
	go func() { _ = c.Serve() }()
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func coordURL(c *Coordinator) string { return "http://" + c.Addr() }

func httpDo(t testing.TB, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header, data
}

const createBody = `{"tasks":[{"name":"a","wcet":1,"period":5},{"name":"b","wcet":2,"period":10}],"speeds":[1,1,2],"scheduler":"edf"}`

// createSession opens a session through the coordinator and returns the
// assigned ID and the shard that answered.
func createSession(t testing.TB, base string) (id, shard string) {
	t.Helper()
	code, hdr, data := httpDo(t, http.MethodPost, base+"/v1/sessions", createBody)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, data)
	}
	var sr service.SessionResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	if sr.ID == "" {
		t.Fatal("create response has no session id")
	}
	return sr.ID, hdr.Get("X-Shard")
}

// ---- tests ----

// TestClusterRouting: session traffic lands on the ring owner and is
// stamped X-Shard; stateless endpoints are answered locally, unstamped.
func TestClusterRouting(t *testing.T) {
	r0, r1, r2 := startReplica(t, false), startReplica(t, false), startReplica(t, false)
	c := startCoordinator(t, r0, r1, r2)
	base := coordURL(c)
	ring := NewRing([]string{r0.url, r1.url, r2.url}, 0)

	shards := map[string]int{}
	for i := 0; i < 12; i++ {
		id, shard := createSession(t, base)
		if want := ring.Owner(id); shard != want {
			t.Errorf("session %s created on %s, ring owner is %s", id, shard, want)
		}
		shards[shard]++
		code, hdr, _ := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
		if code != http.StatusOK || hdr.Get("X-Shard") != shard {
			t.Errorf("get %s: %d via %q, want 200 via %q", id, code, hdr.Get("X-Shard"), shard)
		}
	}
	if len(shards) < 2 {
		t.Errorf("12 sessions all landed on one replica: %v", shards)
	}

	code, hdr, _ := httpDo(t, http.MethodPost, base+"/v1/test",
		`{"tasks":[{"wcet":1,"period":4}],"speeds":[1],"scheduler":"edf"}`)
	if code != http.StatusOK {
		t.Errorf("/v1/test via coordinator: %d", code)
	}
	if hdr.Get("X-Shard") != "" {
		t.Errorf("stateless endpoint was forwarded to %q", hdr.Get("X-Shard"))
	}

	code, _, data := httpDo(t, http.MethodGet, base+"/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("/v1/cluster: %d", code)
	}
	var st ClusterStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 3 {
		t.Errorf("cluster status lists %d replicas, want 3", len(st.Replicas))
	}
}

// TestClusterForcedMigration: an operator-placed migration moves the
// session and routing follows it; a migration done behind the
// coordinator's back is healed by following the 421 redirect once.
func TestClusterForcedMigration(t *testing.T) {
	r0, r1 := startReplica(t, false), startReplica(t, false)
	c := startCoordinator(t, r0, r1)
	base := coordURL(c)

	id, shard := createSession(t, base)
	target := r0.url
	if shard == r0.url {
		target = r1.url
	}
	code, _, data := httpDo(t, http.MethodPost, base+"/v1/cluster/migrate",
		fmt.Sprintf(`{"id":%q,"target":%q}`, id, target))
	if code != http.StatusOK {
		t.Fatalf("cluster migrate: %d %s", code, data)
	}
	code, hdr, _ := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
	if code != http.StatusOK || hdr.Get("X-Shard") != target {
		t.Fatalf("after forced migration: %d via %q, want 200 via %q", code, hdr.Get("X-Shard"), target)
	}

	// Move it back directly replica→replica; the coordinator's next
	// forward hits the tombstone and follows it.
	code, _, data = httpDo(t, http.MethodPost, target+"/v1/sessions/"+id+"/migrate",
		fmt.Sprintf(`{"target":%q}`, shard))
	if code != http.StatusOK {
		t.Fatalf("direct migrate back: %d %s", code, data)
	}
	code, hdr, _ = httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
	if code != http.StatusOK || hdr.Get("X-Shard") != shard {
		t.Fatalf("after behind-the-back migration: %d via %q, want 200 via %q", code, hdr.Get("X-Shard"), shard)
	}
	if got := c.Status().Redirects; got == 0 {
		t.Error("redirect follow not counted")
	}
}

// TestClusterJoinLeave: joining a replica relocates exactly the sessions
// the ring hands it, leaving drains it, and every session stays
// reachable (and correctly placed) throughout.
func TestClusterJoinLeave(t *testing.T) {
	r0, r1 := startReplica(t, false), startReplica(t, false)
	c := startCoordinator(t, r0, r1)
	base := coordURL(c)

	var ids []string
	for i := 0; i < 24; i++ {
		id, _ := createSession(t, base)
		ids = append(ids, id)
	}

	r2 := startReplica(t, false)
	code, _, data := httpDo(t, http.MethodPost, base+"/v1/cluster/join", fmt.Sprintf(`{"replica":%q}`, r2.url))
	if code != http.StatusOK {
		t.Fatalf("join: %d %s", code, data)
	}
	var jr struct {
		Moved int `json:"moved"`
	}
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	grown := NewRing([]string{r0.url, r1.url, r2.url}, 0)
	wantMoved := 0
	old := NewRing([]string{r0.url, r1.url}, 0)
	for _, id := range ids {
		if grown.Owner(id) != old.Owner(id) {
			wantMoved++
		}
	}
	if jr.Moved != wantMoved {
		t.Errorf("join moved %d sessions, ring says exactly %d must move", jr.Moved, wantMoved)
	}
	if wantMoved == 0 {
		t.Fatal("no session relocates on join; the test is vacuous — change the ID count")
	}
	for _, id := range ids {
		code, hdr, _ := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
		if code != http.StatusOK || hdr.Get("X-Shard") != grown.Owner(id) {
			t.Errorf("after join, %s: %d via %q, want 200 via %q", id, code, hdr.Get("X-Shard"), grown.Owner(id))
		}
	}

	code, _, data = httpDo(t, http.MethodPost, base+"/v1/cluster/leave", fmt.Sprintf(`{"replica":%q}`, r2.url))
	if code != http.StatusOK {
		t.Fatalf("leave: %d %s", code, data)
	}
	for _, id := range ids {
		code, hdr, _ := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
		if code != http.StatusOK || hdr.Get("X-Shard") != old.Owner(id) {
			t.Errorf("after leave, %s: %d via %q, want 200 via %q", id, code, hdr.Get("X-Shard"), old.Owner(id))
		}
	}
	for _, rep := range c.Status().Replicas {
		if rep.URL == r2.url {
			t.Error("drained replica still in the contact set")
		}
	}
}

// TestClusterReplicaCrash: a killed replica turns into 502s for its
// sessions (the probe marks it down); after a restart from its WAL the
// sessions answer again with their state intact.
func TestClusterReplicaCrash(t *testing.T) {
	r0, r1 := startReplica(t, true), startReplica(t, true)
	c := startCoordinator(t, r0, r1)
	base := coordURL(c)

	id, shard := createSession(t, base)
	victim := r0
	if shard == r1.url {
		victim = r1
	}
	code, _, data := httpDo(t, http.MethodPost, base+"/v1/sessions/"+id+"/tasks",
		`{"task":{"name":"x","wcet":1,"period":10}}`)
	if code != http.StatusOK {
		t.Fatalf("admit: %d %s", code, data)
	}

	victim.crash(t)
	code, _, _ = httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
	if code != http.StatusBadGateway {
		t.Fatalf("get through dead replica: %d, want 502", code)
	}
	c.Probe(context.Background())
	if !strings.Contains(metricsText(t, base), fmt.Sprintf("partfeas_replica_up{replica=%q} 0", victim.url)) {
		t.Error("dead replica not reported down")
	}

	victim.restart(t)
	code, hdr, data := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
	if code != http.StatusOK || hdr.Get("X-Shard") != victim.url {
		t.Fatalf("after restart: %d via %q: %s", code, hdr.Get("X-Shard"), data)
	}
	var sr service.SessionResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Tasks) != 3 {
		t.Errorf("recovered session has %d tasks, want 3 (2 created + 1 admitted)", len(sr.Tasks))
	}
	c.Probe(context.Background())
	if !strings.Contains(metricsText(t, base), fmt.Sprintf("partfeas_replica_up{replica=%q} 1", victim.url)) {
		t.Error("recovered replica not reported up")
	}
}

// TestClusterDegradedPassthrough is the satellite-2 claim: a
// WAL-degraded replica's 503 — Retry-After and all — must reach the
// client through the coordinator unchanged (and be counted), never be
// masked or retried into a fake success.
func TestClusterDegradedPassthrough(t *testing.T) {
	r0 := startReplica(t, true)
	c := startCoordinator(t, r0)
	base := coordURL(c)
	id, _ := createSession(t, base)

	deactivate := faultinject.Activate(faultinject.Plan{
		Site: faultinject.SiteWALAppend,
		Nth:  1,
		Err:  fmt.Errorf("injected disk failure"),
	})
	defer deactivate()

	code, hdr, data := httpDo(t, http.MethodPost, base+"/v1/sessions/"+id+"/tasks",
		`{"task":{"name":"x","wcet":1,"period":10}}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("admit on degraded replica: %d %s, want 503", code, data)
	}
	if got := hdr.Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After = %q, want %q (stripped in transit?)", got, "30")
	}
	if hdr.Get("X-Shard") != r0.url {
		t.Errorf("degraded 503 not attributed to its shard: %q", hdr.Get("X-Shard"))
	}
	if got := c.Status().DegradedPassthrough; got != 1 {
		t.Errorf("degraded passthrough count = %d, want 1", got)
	}
	if !strings.Contains(metricsText(t, base), "partfeas_degraded_passthrough_total 1") {
		t.Error("/metrics missing the degraded passthrough counter")
	}
	// Reads keep working through the same path.
	if code, _, _ := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, ""); code != http.StatusOK {
		t.Errorf("read on degraded replica: %d, want 200", code)
	}
}

func metricsText(t testing.TB, base string) string {
	t.Helper()
	code, _, data := httpDo(t, http.MethodGet, base+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	return string(data)
}

// TestClusterSmoke is the clustersmoke gate: a 3-replica durable cluster
// behind a coordinator — sessions spread by the ring, one forced
// migration, one replica crash + WAL restart, a rebalance — and at the
// end every session answers with the right state and the metrics agree.
func TestClusterSmoke(t *testing.T) {
	reps := []*testReplica{startReplica(t, true), startReplica(t, true), startReplica(t, true)}
	c := startCoordinator(t, reps[0], reps[1], reps[2])
	base := coordURL(c)
	byURL := map[string]*testReplica{}
	for _, r := range reps {
		byURL[r.url] = r
	}

	var ids []string
	for i := 0; i < 9; i++ {
		id, _ := createSession(t, base)
		code, _, data := httpDo(t, http.MethodPost, base+"/v1/sessions/"+id+"/tasks",
			fmt.Sprintf(`{"task":{"name":"extra%d","wcet":1,"period":20}}`, i))
		if code != http.StatusOK {
			t.Fatalf("admit into %s: %d %s", id, code, data)
		}
		ids = append(ids, id)
	}

	// Forced migration off the ring owner.
	ring := NewRing([]string{reps[0].url, reps[1].url, reps[2].url}, 0)
	owner := ring.Owner(ids[0])
	var target string
	for _, r := range reps {
		if r.url != owner {
			target = r.url
			break
		}
	}
	code, _, data := httpDo(t, http.MethodPost, base+"/v1/cluster/migrate",
		fmt.Sprintf(`{"id":%q,"target":%q}`, ids[0], target))
	if code != http.StatusOK {
		t.Fatalf("forced migration: %d %s", code, data)
	}

	// Crash and restart the migration target, then rebalance: the
	// restarted replica still holds the migrated session (durable
	// MigrateIn), and rebalance sends it home to the ring owner.
	byURL[target].crash(t)
	byURL[target].restart(t)
	code, _, data = httpDo(t, http.MethodPost, base+"/v1/cluster/rebalance", "")
	if code != http.StatusOK {
		t.Fatalf("rebalance: %d %s", code, data)
	}

	for _, id := range ids {
		code, hdr, body := httpDo(t, http.MethodGet, base+"/v1/sessions/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("get %s: %d %s", id, code, body)
		}
		if want := ring.Owner(id); hdr.Get("X-Shard") != want {
			t.Errorf("%s served by %q, ring owner %q", id, hdr.Get("X-Shard"), want)
		}
		var sr service.SessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Tasks) != 3 {
			t.Errorf("%s has %d tasks, want 3", id, len(sr.Tasks))
		}
	}

	c.Probe(context.Background())
	mtx := metricsText(t, base)
	total := 0
	for _, r := range reps {
		var n int
		fmt.Sscanf(afterLine(mtx, fmt.Sprintf("partfeas_replica_sessions{replica=%q} ", r.url)), "%d", &n)
		total += n
		if !strings.Contains(mtx, fmt.Sprintf("partfeas_replica_up{replica=%q} 1", r.url)) {
			t.Errorf("replica %s not up at the end", r.url)
		}
	}
	if total != len(ids) {
		t.Errorf("session gauges sum to %d, want %d", total, len(ids))
	}
	if !strings.Contains(mtx, "partfeas_forwarded_requests_total{replica=") {
		t.Error("/metrics missing forwarded-requests counters")
	}
	// The migration counters moved on the replicas involved.
	_, _, repm := httpDo(t, http.MethodGet, target+"/metrics", "")
	if !strings.Contains(string(repm), `partfeas_migrations_total{direction="out"} 1`) {
		t.Error("migration target's out-counter did not move on rebalance")
	}
}

// afterLine returns the remainder of the first line starting with
// prefix, or "" when absent.
func afterLine(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimPrefix(line, prefix)
		}
	}
	return ""
}
