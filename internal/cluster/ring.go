// Package cluster shards the admission service across replicas: a
// consistent-hash ring maps every session ID to its owning replica, and
// a thin coordinator routes /v1/sessions/* traffic there, drives
// epoch-fenced live migrations when membership changes, and answers
// stateless endpoints locally.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when a Ring (or
// coordinator Config) does not specify one. 64 points per member keeps
// the per-member load spread within a few percent of uniform for small
// clusters while the ring stays a few KiB.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring. Each member contributes
// vnodes points at FNV-1a positions; a key is owned by the member whose
// point follows the key's hash clockwise. Immutability makes membership
// changes copy-on-write (With / Without), so concurrent lookups never
// need a lock — swap the pointer.
type Ring struct {
	vnodes  int
	members []string // sorted, unique
	points  []point  // sorted by (hash, member, vnode)
}

type point struct {
	hash   uint64
	member string
	vnode  int
}

// NewRing builds a ring over members (duplicates collapse) with the
// given virtual-node count (≤ 0 means DefaultVNodes). An empty member
// list is a valid ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(m + "#" + strconv.Itoa(v)), member: m, vnode: v})
		}
	}
	// Ties are astronomically rare at 64-bit but must still break
	// deterministically, or two processes could route one session to
	// different owners.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.member != b.member {
			return a.member < b.member
		}
		return a.vnode < b.vnode
	})
	return r
}

// hashKey is FNV-1a 64 finished with a splitmix64 round: stable across
// processes, platforms and restarts (a ring rebuilt from the same
// membership routes identically forever). The finalizer matters — raw
// FNV-1a mixes too little for short, similar keys (vnode labels differ
// by a digit), which clumps a member's points and skews ownership
// shares several-fold.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner maps a key to its owning member, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[i].member
}

// Members returns the sorted member list (shared slice; do not mutate).
func (r *Ring) Members() []string { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Has reports membership.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// With returns a ring with member added (or r itself if present).
func (r *Ring) With(member string) *Ring {
	if r.Has(member) {
		return r
	}
	return NewRing(append(append([]string(nil), r.members...), member), r.vnodes)
}

// Without returns a ring with member removed (or r itself if absent).
func (r *Ring) Without(member string) *Ring {
	if !r.Has(member) {
		return r
	}
	rest := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	return NewRing(rest, r.vnodes)
}

// Spread returns, for n sample keys "k0".."k<n-1>", how many land on
// each member — the uniformity measure the property tests bound.
func (r *Ring) Spread(n int) map[string]int {
	out := make(map[string]int, len(r.members))
	for i := 0; i < n; i++ {
		out[r.Owner("k"+strconv.Itoa(i))]++
	}
	return out
}

func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members × %d vnodes)", len(r.members), r.vnodes)
}
