package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partfeas/internal/service"
)

// Config tunes a Coordinator.
type Config struct {
	// Addr is the listen address; empty means ":8370".
	Addr string
	// Replicas are the initial replica base URLs (e.g.
	// "http://127.0.0.1:8377"). Membership can change later via
	// Join/Leave or the /v1/cluster endpoints.
	Replicas []string
	// VNodes is the virtual-node count per replica; 0 means DefaultVNodes.
	VNodes int
	// HealthInterval is the replica probe cadence; 0 means 2s, negative
	// disables the background loop (tests drive probes explicitly).
	HealthInterval time.Duration
	// IDPrefix seeds coordinator-assigned session IDs
	// ("<prefix>-<n>"). Empty means a startup-unique prefix, so a
	// restarted coordinator never re-issues an ID that may still be live
	// on a durable replica.
	IDPrefix string
	// Local serves the stateless endpoints (/v1/test, /v1/minalpha,
	// /v1/analyze); nil means a fresh default service.New.
	Local *service.Server
	// Logf receives lifecycle lines; nil discards them.
	Logf func(format string, args ...any)
}

// replicaState is what the health loop knows about one replica.
type replicaState struct {
	Up       bool `json:"up"`
	Sessions int  `json:"sessions"`
	Draining bool `json:"draining"`
	// InRing distinguishes a drained-but-still-contacted replica from a
	// routing member.
	InRing bool `json:"in_ring"`
}

// Coordinator fronts a set of admission-service replicas: session
// traffic is routed by consistent hash of the session ID, ownership
// moves via the replicas' epoch-fenced migration protocol, and
// stateless analysis endpoints are answered locally.
type Coordinator struct {
	cfg   Config
	local *service.Server

	mu       sync.Mutex
	ring     *Ring
	replicas map[string]*replicaState // every contactable replica, ring member or not
	// overrides routes a session to the replica that actually holds it
	// when that differs from the ring owner (operator-placed sessions,
	// mid-rebalance state). Learned from 421 redirects, self-driven
	// migrations, and health-loop scrapes.
	overrides map[string]string
	forwarded map[string]uint64 // completed forwards by replica
	seq       uint64

	degradedPassthrough atomic.Uint64 // replica 503s relayed unchanged
	migrationRetries    atomic.Uint64 // forwards retried on in-progress migrations
	redirects           atomic.Uint64 // forwards re-routed by a 421 tombstone

	client  *http.Client
	handler http.Handler

	hs     *http.Server
	ln     net.Listener
	stopHC chan struct{}
	hcDone chan struct{}
}

// New builds a Coordinator over cfg.Replicas.
func New(cfg Config) *Coordinator {
	if cfg.Addr == "" {
		cfg.Addr = ":8370"
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = fmt.Sprintf("c%x", time.Now().UnixNano())
	}
	c := &Coordinator{
		cfg:       cfg,
		local:     cfg.Local,
		ring:      NewRing(cfg.Replicas, cfg.VNodes),
		replicas:  make(map[string]*replicaState, len(cfg.Replicas)),
		overrides: map[string]string{},
		forwarded: map[string]uint64{},
		client:    &http.Client{},
		stopHC:    make(chan struct{}),
		hcDone:    make(chan struct{}),
	}
	if c.local == nil {
		c.local = service.New(service.Config{Logf: cfg.Logf})
	}
	for _, rep := range c.ring.Members() {
		c.replicas[rep] = &replicaState{InRing: true}
	}
	c.handler = c.routes()
	if cfg.HealthInterval > 0 {
		go c.healthLoop()
	} else {
		close(c.hcDone)
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Handler exposes the full coordinator route set.
func (c *Coordinator) Handler() http.Handler { return c.handler }

func (c *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sessions", c.handleSessionsRoot)
	mux.HandleFunc("/v1/sessions/", c.handleSessionPath)
	mux.HandleFunc("GET /v1/cluster", c.handleClusterStatus)
	mux.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	mux.HandleFunc("POST /v1/cluster/leave", c.handleLeave)
	mux.HandleFunc("POST /v1/cluster/rebalance", c.handleRebalance)
	mux.HandleFunc("POST /v1/cluster/migrate", c.handleMigrate)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "coordinator"})
	})
	mux.Handle("/", c.local.Handler())
	return mux
}

// ---- session routing ----

// handleSessionsRoot forwards session creation. The coordinator assigns
// the ID (the ring routes by ID, which must exist before the session
// does) and passes it via X-Session-ID; a client-supplied X-Session-ID
// is honored.
func (c *Coordinator) handleSessionsRoot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, service.ErrorResponse{Error: "method not allowed"})
		return
	}
	id := r.Header.Get("X-Session-ID")
	if id == "" {
		c.mu.Lock()
		c.seq++
		id = fmt.Sprintf("%s-%d", c.cfg.IDPrefix, c.seq)
		c.mu.Unlock()
		r.Header.Set("X-Session-ID", id)
	}
	c.forward(w, r, id)
}

// handleSessionPath forwards every per-session operation to the owner
// of the ID in the path.
func (c *Coordinator) handleSessionPath(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	id, _, _ := strings.Cut(rest, "/")
	if id == "" {
		writeJSON(w, http.StatusNotFound, service.ErrorResponse{Error: "missing session id"})
		return
	}
	c.forward(w, r, id)
}

// routeFor resolves the replica a session ID should be sent to.
func (c *Coordinator) routeFor(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rep, ok := c.overrides[id]; ok {
		return rep
	}
	return c.ring.Owner(id)
}

// forwardAttempts bounds one request's routing walk: an initial send
// plus a few migration-wait retries or one tombstone redirect hop.
const forwardAttempts = 5

// forward relays r to the owner of id, following the migration
// protocol's routing signals: a 503 marked X-Migration is retried here
// (the handoff is sub-second), a 421 re-routes to the X-Session-Owner
// it names, and everything else — including a WAL-degraded replica's
// plain 503 — is the replica's answer and passes through unchanged.
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, id string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<26))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Error: fmt.Sprintf("reading request body: %v", err)})
		return
	}
	replica := c.routeFor(id)
	if replica == "" {
		writeJSON(w, http.StatusServiceUnavailable, service.ErrorResponse{Error: "no replicas in the ring"})
		return
	}
	for attempt := 0; ; attempt++ {
		res, err := c.send(r, replica, body)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, service.ErrorResponse{Error: fmt.Sprintf("replica %s: %v", replica, err)})
			return
		}
		if attempt < forwardAttempts {
			if res.StatusCode == http.StatusMisdirectedRequest {
				owner := res.Header.Get("X-Session-Owner")
				drain(res)
				if owner != "" && owner != replica {
					c.redirects.Add(1)
					c.noteOverride(id, owner)
					replica = owner
					continue
				}
				// A tombstone without a known owner (or pointing at
				// ourselves) is the final answer.
				writeJSON(w, http.StatusMisdirectedRequest, service.ErrorResponse{Error: fmt.Sprintf("session %q moved from %s with no reachable owner", id, replica)})
				return
			}
			if res.StatusCode == http.StatusServiceUnavailable && res.Header.Get("X-Migration") != "" {
				drain(res)
				c.migrationRetries.Add(1)
				time.Sleep(25 * time.Millisecond << uint(attempt))
				continue
			}
		}
		if res.StatusCode == http.StatusServiceUnavailable {
			// A plain 503 is the replica refusing writes (WAL-degraded):
			// the client must see it — and its Retry-After — unchanged.
			c.degradedPassthrough.Add(1)
		}
		c.relay(w, res, replica)
		return
	}
}

// send replays the buffered request against one replica.
func (c *Coordinator) send(r *http.Request, replica string, body []byte) (*http.Response, error) {
	u := strings.TrimRight(replica, "/") + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Session-ID"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set("X-Forwarded-By", "partfeas-coordinator")
	return c.client.Do(req)
}

// relay copies the replica's response to the client, stamped with the
// shard that answered.
func (c *Coordinator) relay(w http.ResponseWriter, res *http.Response, replica string) {
	defer res.Body.Close()
	for k, vs := range res.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Shard", replica)
	w.WriteHeader(res.StatusCode)
	io.Copy(w, res.Body)
	c.mu.Lock()
	c.forwarded[replica]++
	c.mu.Unlock()
}

func (c *Coordinator) noteOverride(id, replica string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring.Owner(id) == replica {
		delete(c.overrides, id)
	} else {
		c.overrides[id] = replica
	}
}

func drain(res *http.Response) {
	io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20))
	res.Body.Close()
}

// ---- membership and rebalancing ----

// Join adds a replica to the ring and rebalances onto it.
func (c *Coordinator) Join(ctx context.Context, replica string) (int, error) {
	c.mu.Lock()
	c.ring = c.ring.With(replica)
	if st := c.replicas[replica]; st != nil {
		st.InRing = true
		st.Draining = false
	} else {
		c.replicas[replica] = &replicaState{InRing: true}
	}
	c.mu.Unlock()
	c.logf("cluster: %s joined the ring", replica)
	return c.Rebalance(ctx)
}

// Leave drains a replica: it comes off the ring (so nothing new routes
// there), its sessions migrate to their new owners, and only then is it
// dropped from the contact set.
func (c *Coordinator) Leave(ctx context.Context, replica string) (int, error) {
	c.mu.Lock()
	c.ring = c.ring.Without(replica)
	if st := c.replicas[replica]; st != nil {
		st.InRing = false
		st.Draining = true
	}
	c.mu.Unlock()
	c.logf("cluster: %s leaving; draining", replica)
	moved, err := c.Rebalance(ctx)
	if err != nil {
		return moved, err
	}
	c.mu.Lock()
	delete(c.replicas, replica)
	c.mu.Unlock()
	c.logf("cluster: %s left (%d session(s) moved)", replica, moved)
	return moved, nil
}

// Rebalance walks every contactable replica's session index and
// migrates each session whose ring owner is elsewhere; unconfirmed
// handoffs (retained tombstones) are re-driven. Returns the number of
// sessions moved. Consistent hashing bounds the work: a single
// membership change relocates ~1/N of sessions.
func (c *Coordinator) Rebalance(ctx context.Context) (int, error) {
	c.mu.Lock()
	ring := c.ring
	replicas := make([]string, 0, len(c.replicas))
	for rep := range c.replicas {
		replicas = append(replicas, rep)
	}
	c.mu.Unlock()
	sort.Strings(replicas)

	moved := 0
	var firstErr error
	for _, rep := range replicas {
		idx, err := c.fetchIndex(ctx, rep)
		if err != nil {
			// An unreachable replica keeps its sessions; the next
			// rebalance (or its restart) picks them up.
			c.logf("cluster: rebalance: skipping %s: %v", rep, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %s: %w", rep, err)
			}
			continue
		}
		for _, mv := range idx.Moved {
			if !mv.Retained {
				continue
			}
			// A fenced-but-unconfirmed handoff from a crashed or
			// interrupted migration: re-drive it to its recorded target.
			if err := c.migrate(ctx, rep, mv.ID, mv.Target); err != nil {
				c.logf("cluster: rebalance: re-driving %s from %s: %v", mv.ID, rep, err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			c.noteOverride(mv.ID, mv.Target)
			moved++
		}
		for _, si := range idx.Sessions {
			want := ring.Owner(si.ID)
			if want == "" || want == rep {
				c.noteOverride(si.ID, rep)
				continue
			}
			if err := c.migrate(ctx, rep, si.ID, want); err != nil {
				c.logf("cluster: rebalance: moving %s %s→%s: %v", si.ID, rep, want, err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			c.noteOverride(si.ID, want)
			moved++
		}
	}
	if moved > 0 {
		c.logf("cluster: rebalance moved %d session(s)", moved)
	}
	return moved, firstErr
}

// migrate asks the replica holding id to hand it to target.
func (c *Coordinator) migrate(ctx context.Context, holder, id, target string) error {
	var resp service.MigrateResponse
	return c.postJSON(ctx, holder, "/v1/sessions/"+id+"/migrate", service.MigrateRequest{Target: target}, &resp)
}

func (c *Coordinator) fetchIndex(ctx context.Context, replica string) (*service.SessionIndex, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(replica, "/")+"/internal/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("session index: %s", res.Status)
	}
	var idx service.SessionIndex
	if err := json.NewDecoder(io.LimitReader(res.Body, 1<<26)).Decode(&idx); err != nil {
		return nil, err
	}
	return &idx, nil
}

func (c *Coordinator) postJSON(ctx context.Context, base, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(base, "/")+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if res.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 256 {
			msg = msg[:256]
		}
		return fmt.Errorf("%s%s: %s: %s", base, path, res.Status, msg)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// ---- health ----

func (c *Coordinator) healthLoop() {
	defer close(c.hcDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopHC:
			return
		case <-t.C:
			c.Probe(context.Background())
		}
	}
}

// Probe refreshes every replica's health and session count, and learns
// routing overrides for sessions living off their ring owner. Exported
// so tests (and the smoke gate) can drive it without waiting a tick.
func (c *Coordinator) Probe(ctx context.Context) {
	c.mu.Lock()
	replicas := make([]string, 0, len(c.replicas))
	for rep := range c.replicas {
		replicas = append(replicas, rep)
	}
	ring := c.ring
	c.mu.Unlock()

	for _, rep := range replicas {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		idx, err := c.fetchIndex(pctx, rep)
		cancel()
		c.mu.Lock()
		st := c.replicas[rep]
		if st == nil {
			c.mu.Unlock()
			continue
		}
		if err != nil {
			st.Up = false
			c.mu.Unlock()
			continue
		}
		st.Up = true
		st.Sessions = len(idx.Sessions)
		for _, si := range idx.Sessions {
			if ring.Owner(si.ID) == rep {
				delete(c.overrides, si.ID)
			} else {
				c.overrides[si.ID] = rep
			}
		}
		c.mu.Unlock()
	}
}

// ---- cluster admin endpoints ----

// ReplicaStatus is one row of the /v1/cluster report.
type ReplicaStatus struct {
	URL       string `json:"url"`
	Up        bool   `json:"up"`
	Sessions  int    `json:"sessions"`
	InRing    bool   `json:"in_ring"`
	Draining  bool   `json:"draining,omitempty"`
	Forwarded uint64 `json:"forwarded_requests"`
}

// ClusterStatus is the /v1/cluster report.
type ClusterStatus struct {
	Replicas            []ReplicaStatus `json:"replicas"`
	VNodes              int             `json:"vnodes"`
	Overrides           int             `json:"routing_overrides"`
	MigrationRetries    uint64          `json:"migration_retries"`
	Redirects           uint64          `json:"redirects"`
	DegradedPassthrough uint64          `json:"degraded_passthrough"`
}

// Status snapshots the cluster view (also served at GET /v1/cluster).
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ClusterStatus{
		VNodes:              c.ring.vnodes,
		Overrides:           len(c.overrides),
		MigrationRetries:    c.migrationRetries.Load(),
		Redirects:           c.redirects.Load(),
		DegradedPassthrough: c.degradedPassthrough.Load(),
	}
	urls := make([]string, 0, len(c.replicas))
	for rep := range c.replicas {
		urls = append(urls, rep)
	}
	sort.Strings(urls)
	for _, rep := range urls {
		st := c.replicas[rep]
		out.Replicas = append(out.Replicas, ReplicaStatus{
			URL: rep, Up: st.Up, Sessions: st.Sessions,
			InRing: st.InRing, Draining: st.Draining,
			Forwarded: c.forwarded[rep],
		})
	}
	return out
}

func (c *Coordinator) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

type memberRequest struct {
	Replica string `json:"replica"`
}

type migrateAdminRequest struct {
	ID     string `json:"id"`
	Target string `json:"target"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req memberRequest
	if !decodeAdmin(w, r, &req) || !validReplica(w, req.Replica) {
		return
	}
	moved, err := c.Join(r.Context(), req.Replica)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, service.ErrorResponse{Error: fmt.Sprintf("joined; rebalance incomplete: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"joined": req.Replica, "moved": moved})
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req memberRequest
	if !decodeAdmin(w, r, &req) || !validReplica(w, req.Replica) {
		return
	}
	moved, err := c.Leave(r.Context(), req.Replica)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, service.ErrorResponse{Error: fmt.Sprintf("drain incomplete: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"left": req.Replica, "moved": moved})
}

func (c *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	moved, err := c.Rebalance(r.Context())
	if err != nil {
		writeJSON(w, http.StatusBadGateway, service.ErrorResponse{Error: fmt.Sprintf("rebalance incomplete after %d move(s): %v", moved, err)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"moved": moved})
}

// handleMigrate moves one session to an explicit replica (operator
// placement); the coordinator remembers the override so routing follows.
func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateAdminRequest
	if !decodeAdmin(w, r, &req) || !validReplica(w, req.Target) {
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Error: "id is required"})
		return
	}
	holder := c.routeFor(req.ID)
	if holder == "" {
		writeJSON(w, http.StatusServiceUnavailable, service.ErrorResponse{Error: "no replicas in the ring"})
		return
	}
	if holder == req.Target {
		writeJSON(w, http.StatusOK, map[string]any{"migrated": false, "already_on": holder})
		return
	}
	if err := c.migrate(r.Context(), holder, req.ID, req.Target); err != nil {
		writeJSON(w, http.StatusBadGateway, service.ErrorResponse{Error: fmt.Sprintf("migrating %s %s→%s: %v", req.ID, holder, req.Target, err)})
		return
	}
	c.noteOverride(req.ID, req.Target)
	writeJSON(w, http.StatusOK, map[string]any{"migrated": true, "from": holder, "to": req.Target})
}

func decodeAdmin[T any](w http.ResponseWriter, r *http.Request, dst *T) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return false
	}
	return true
}

func validReplica(w http.ResponseWriter, url string) bool {
	if strings.HasPrefix(url, "http://") || strings.HasPrefix(url, "https://") {
		return true
	}
	writeJSON(w, http.StatusBadRequest, service.ErrorResponse{Error: fmt.Sprintf("replica %q must be a base URL", url)})
	return false
}

// ---- metrics ----

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := c.Status()
	fmt.Fprintf(w, "# HELP partfeas_forwarded_requests_total Session requests forwarded to a replica.\n")
	fmt.Fprintf(w, "# TYPE partfeas_forwarded_requests_total counter\n")
	for _, rep := range st.Replicas {
		fmt.Fprintf(w, "partfeas_forwarded_requests_total{replica=%q} %d\n", rep.URL, rep.Forwarded)
	}
	fmt.Fprintf(w, "# HELP partfeas_replica_up 1 if the replica answered its last probe.\n")
	fmt.Fprintf(w, "# TYPE partfeas_replica_up gauge\n")
	for _, rep := range st.Replicas {
		up := 0
		if rep.Up {
			up = 1
		}
		fmt.Fprintf(w, "partfeas_replica_up{replica=%q} %d\n", rep.URL, up)
	}
	fmt.Fprintf(w, "# HELP partfeas_replica_sessions Sessions held per replica at the last probe.\n")
	fmt.Fprintf(w, "# TYPE partfeas_replica_sessions gauge\n")
	for _, rep := range st.Replicas {
		fmt.Fprintf(w, "partfeas_replica_sessions{replica=%q} %d\n", rep.URL, rep.Sessions)
	}
	fmt.Fprintf(w, "# HELP partfeas_forward_migration_retries_total Forwards retried while a session handoff was in progress.\n")
	fmt.Fprintf(w, "# TYPE partfeas_forward_migration_retries_total counter\n")
	fmt.Fprintf(w, "partfeas_forward_migration_retries_total %d\n", st.MigrationRetries)
	fmt.Fprintf(w, "# HELP partfeas_forward_redirects_total Forwards re-routed by a moved-session redirect.\n")
	fmt.Fprintf(w, "# TYPE partfeas_forward_redirects_total counter\n")
	fmt.Fprintf(w, "partfeas_forward_redirects_total %d\n", st.Redirects)
	fmt.Fprintf(w, "# HELP partfeas_degraded_passthrough_total Replica write-refusals (WAL-degraded 503s) relayed to clients unchanged.\n")
	fmt.Fprintf(w, "# TYPE partfeas_degraded_passthrough_total counter\n")
	fmt.Fprintf(w, "partfeas_degraded_passthrough_total %d\n", st.DegradedPassthrough)
	c.local.Metrics().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ---- lifecycle ----

// Listen binds the configured address (":0" picks an ephemeral port).
func (c *Coordinator) Listen() error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", c.cfg.Addr, err)
	}
	c.ln = ln
	c.hs = &http.Server{Handler: c.handler}
	return nil
}

// Addr returns the bound address after Listen.
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return c.cfg.Addr
	}
	return c.ln.Addr().String()
}

// Serve blocks serving the bound listener.
func (c *Coordinator) Serve() error {
	if c.hs == nil {
		if err := c.Listen(); err != nil {
			return err
		}
	}
	c.logf("cluster: coordinator serving on %s (%d replica(s))", c.Addr(), c.ring.Size())
	return c.hs.Serve(c.ln)
}

// Close stops the health loop (and the HTTP server, if serving).
func (c *Coordinator) Close() error {
	select {
	case <-c.stopHC:
	default:
		close(c.stopHC)
	}
	<-c.hcDone
	if c.hs != nil {
		return c.hs.Close()
	}
	return nil
}

// Shutdown drains gracefully.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	select {
	case <-c.stopHC:
	default:
		close(c.stopHC)
	}
	<-c.hcDone
	var err error
	if c.hs != nil {
		err = c.hs.Shutdown(ctx)
	}
	return err
}
