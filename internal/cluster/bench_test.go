package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"partfeas/internal/service"
)

// The admit benchmarks drive a steady-state operation: the candidate
// task is deterministically infeasible, so the engine tests it, rejects
// it and rolls back — the session never grows and every iteration costs
// the same. BenchmarkForwardedAdmit minus BenchmarkDirectAdmit is the
// coordinator's routing overhead (one extra proxy hop plus the ring
// lookup and header rewrite).

const benchCreate = `{"tasks":[{"name":"base","wcet":3,"period":4}],"speeds":[1],"scheduler":"edf"}`
const benchAdmit = `{"task":{"name":"cand","wcet":1,"period":2}}`

func benchAdmitLoop(b *testing.B, url string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, data := httpDo(b, http.MethodPost, url, benchAdmit)
		if code != http.StatusOK {
			b.Fatalf("admit: %d %s", code, data)
		}
	}
}

func BenchmarkDirectAdmit(b *testing.B) {
	rep := startReplica(b, false)
	code, _, data := httpDo(b, http.MethodPost, rep.url+"/v1/sessions", benchCreate)
	if code != http.StatusCreated {
		b.Fatalf("create: %d %s", code, data)
	}
	benchAdmitLoop(b, rep.url+"/v1/sessions/s-1/tasks")
}

func BenchmarkForwardedAdmit(b *testing.B) {
	rep := startReplica(b, false)
	c := startCoordinator(b, rep)
	id, _ := createSessionWith(b, coordURL(c), benchCreate)
	benchAdmitLoop(b, coordURL(c)+"/v1/sessions/"+id+"/tasks")
}

// BenchmarkSessionMigration measures one full epoch-fenced handoff —
// snapshot, prepare, cutover, tail commit, confirm — by bouncing a
// session between two replicas; each iteration is one migration.
func BenchmarkSessionMigration(b *testing.B) {
	a, c := startReplica(b, false), startReplica(b, false)
	code, _, data := httpDo(b, http.MethodPost, a.url+"/v1/sessions", benchCreate)
	if code != http.StatusCreated {
		b.Fatalf("create: %d %s", code, data)
	}
	holder, other := a.url, c.url
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, data := httpDo(b, http.MethodPost, holder+"/v1/sessions/s-1/migrate",
			fmt.Sprintf(`{"target":%q}`, other))
		if code != http.StatusOK {
			b.Fatalf("migrate %d: %d %s", i, code, data)
		}
		holder, other = other, holder
	}
}

// createSessionWith is createSession with an explicit instance body.
func createSessionWith(t testing.TB, base, body string) (id, shard string) {
	t.Helper()
	code, hdr, data := httpDo(t, http.MethodPost, base+"/v1/sessions", body)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, data)
	}
	var sr service.SessionResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("create response: %v", err)
	}
	return sr.ID, hdr.Get("X-Shard")
}
