package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
		ok   bool
	}{
		{"ok", Problem{NumVars: 2, Constraints: []Constraint{{Coeffs: []float64{1, 1}, Op: LE, RHS: 1}}}, true},
		{"zero vars", Problem{NumVars: 0}, false},
		{"objective mismatch", Problem{NumVars: 2, Objective: []float64{1}}, false},
		{"coeff mismatch", Problem{NumVars: 2, Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: 1}}}, false},
		{"bad relation", Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, Op: Relation(9), RHS: 1}}}, false},
		{"nan coeff", Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{math.NaN()}, Op: LE, RHS: 1}}}, false},
		{"inf rhs", Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: math.Inf(1)}}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate err = %v, ok = %v", err, tc.ok)
			}
		})
	}
}

func TestRelationStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Relation strings broken")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings broken")
	}
	if Relation(42).String() == "" || Status(42).String() == "" {
		t.Error("unknown enum strings broken")
	}
}

// Classic small LP: max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj 12.
func TestSolveBasicMax(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Op: LE, RHS: 6},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 12) || !approx(sol.X[0], 4) || !approx(sol.X[1], 0) {
		t.Errorf("sol = %+v, want x=(4,0) obj=12", sol)
	}
}

// Equality constraints: max x + y s.t. x + y == 2, x - y == 0 → x=y=1, obj 2.
func TestSolveEqualities(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{1, -1}, Op: EQ, RHS: 0},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[0], 1) || !approx(sol.X[1], 1) {
		t.Errorf("sol = %+v, want (1,1)", sol)
	}
}

// GE constraints needing phase 1: min x (max -x) s.t. x >= 3 → x=3.
func TestSolveGE(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 3},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[0], 3) || !approx(sol.Objective, -3) {
		t.Errorf("sol = %+v, want x=3 obj=-3", sol)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: LE, RHS: 1},
			{Coeffs: []float64{1}, Op: GE, RHS: 2},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
	ok, err := Feasible(p)
	if err != nil || ok {
		t.Errorf("Feasible = %v (%v), want false", ok, err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

// Negative RHS rows get flipped correctly: x <= -1 is infeasible for x >= 0,
// and -x <= -1 means x >= 1.
func TestNegativeRHS(t *testing.T) {
	p := &Problem{
		NumVars: 1,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: LE, RHS: -1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("x <= -1 with x >= 0: status = %v, want infeasible", sol.Status)
	}

	p2 := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -1},
		},
	}
	sol2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal || !approx(sol2.X[0], 1) {
		t.Errorf("-x <= -1: sol = %+v, want x = 1", sol2)
	}
}

// Degenerate LP that would cycle without Bland's rule (Beale's example).
func TestBealeDegenerate(t *testing.T) {
	p := &Problem{
		NumVars:   4,
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Op: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Op: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Op: LE, RHS: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 0.05) {
		t.Errorf("Beale: sol = %+v, want objective 1/20", sol)
	}
}

// Zero objective = pure feasibility.
func TestFeasibilityOnly(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 1},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 0.5},
		},
	}
	ok, err := Feasible(p)
	if err != nil || !ok {
		t.Errorf("Feasible = %v (%v), want true", ok, err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// The returned point must satisfy all constraints.
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	checkSatisfies(t, p, sol.X)
}

func checkSatisfies(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for _, v := range x {
		if v < -1e-7 {
			t.Errorf("negative variable %v", v)
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		switch c.Op {
		case LE:
			if lhs > c.RHS+1e-6 {
				t.Errorf("constraint %d violated: %v <= %v", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				t.Errorf("constraint %d violated: %v >= %v", i, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				t.Errorf("constraint %d violated: %v == %v", i, lhs, c.RHS)
			}
		}
	}
}

// Transportation-style random LPs: compare against enumerated vertex optimum
// on 2-variable problems (where brute force over constraint intersections
// is easy and exact).
func TestRandom2DAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 400; trial++ {
		nc := 2 + rng.Intn(4)
		p := &Problem{
			NumVars:   2,
			Objective: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
		}
		for i := 0; i < nc; i++ {
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: []float64{rng.Float64()*4 - 1, rng.Float64()*4 - 1},
				Op:     LE,
				RHS:    rng.Float64() * 5,
			})
		}
		// Bounding box keeps it bounded.
		p.Constraints = append(p.Constraints,
			Constraint{Coeffs: []float64{1, 0}, Op: LE, RHS: 10},
			Constraint{Coeffs: []float64{0, 1}, Op: LE, RHS: 10},
		)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		best, feasible := bruteForce2D(p)
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: simplex %v, brute force infeasible; p=%+v", trial, sol.Status, p)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: simplex %v, brute force feasible", trial, sol.Status)
		}
		if math.Abs(sol.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: simplex obj %v, brute force %v", trial, sol.Objective, best)
		}
		checkSatisfies(t, p, sol.X)
	}
}

// bruteForce2D enumerates all pairwise constraint intersections (including
// the axes x=0, y=0) and returns the best feasible objective.
func bruteForce2D(p *Problem) (best float64, feasible bool) {
	type line struct{ a, b, c float64 } // a x + b y = c
	var lines []line
	for _, con := range p.Constraints {
		lines = append(lines, line{con.Coeffs[0], con.Coeffs[1], con.RHS})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})

	sat := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for _, con := range p.Constraints {
			if con.Coeffs[0]*x+con.Coeffs[1]*y > con.RHS+1e-9 {
				return false
			}
		}
		return true
	}
	best = math.Inf(-1)
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
			if sat(x, y) {
				feasible = true
				obj := p.Objective[0]*x + p.Objective[1]*y
				if obj > best {
					best = obj
				}
			}
		}
	}
	return best, feasible
}

// Larger random feasibility systems: any point Solve returns must satisfy
// the constraints; infeasibility must agree with an obviously-infeasible
// construction.
func TestRandomFeasibilityConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := &Problem{NumVars: n}
		// Build a known-feasible system: pick x*, generate rows with
		// RHS = row·x* + slack.
		xstar := make([]float64, n)
		for i := range xstar {
			xstar[i] = rng.Float64() * 3
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			dot := 0.0
			for j := range coeffs {
				coeffs[j] = rng.Float64()*2 - 0.5
				dot += coeffs[j] * xstar[j]
			}
			switch rng.Intn(3) {
			case 0:
				p.Constraints = append(p.Constraints, Constraint{coeffs, LE, dot + rng.Float64()})
			case 1:
				p.Constraints = append(p.Constraints, Constraint{coeffs, GE, dot - rng.Float64()})
			default:
				p.Constraints = append(p.Constraints, Constraint{coeffs, EQ, dot})
			}
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: known-feasible system reported %v", trial, sol.Status)
		}
		checkSatisfies(t, p, sol.X)
	}
}

func TestRedundantAndDuplicateConstraints(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: LE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 5},
			{Coeffs: []float64{2}, Op: LE, RHS: 10},
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[0], 5) {
		t.Errorf("sol = %+v, want x=5", sol)
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n, m := 40, 30
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		coeffs := make([]float64, n)
		for j := range coeffs {
			coeffs[j] = rng.Float64()
		}
		p.Constraints = append(p.Constraints, Constraint{coeffs, LE, 5 + rng.Float64()*5})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
