// Package lp implements a dense two-phase primal simplex solver for linear
// programs over non-negative variables.
//
// The solver exists to check feasibility of the paper's fractional
// assignment LP (constraints (1)-(4) in §II) directly, as written. The
// combinatorial Horvath–Lam–Sethi condition in internal/fractional is the
// fast path; this solver is the independent oracle the property tests
// cross-validate it against, and the component a user can point at any
// other scheduling LP.
//
// Problems are stated as: maximize c·x subject to a list of <=, >= or ==
// constraints, x >= 0. Phase 1 drives artificial variables out of the
// basis (Bland's rule, so the method cannot cycle); phase 2 optimizes the
// real objective.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint comparison operator.
type Relation int

const (
	// LE is "<=".
	LE Relation = iota
	// GE is ">=".
	GE
	// EQ is "==".
	EQ
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal: an optimal (or, for pure feasibility problems, feasible)
	// solution was found.
	Optimal Status = iota
	// Infeasible: the constraint system has no solution with x >= 0.
	Infeasible
	// Unbounded: the objective can grow without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Constraint is one row: Coeffs·x Op RHS.
type Constraint struct {
	Coeffs []float64
	Op     Relation
	RHS    float64
}

// Problem is a linear program over NumVars non-negative variables.
// A nil or all-zero Objective turns Solve into a pure feasibility check.
type Problem struct {
	NumVars     int
	Objective   []float64 // maximized; may be nil
	Constraints []Constraint
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values; nil unless Status == Optimal
	Objective float64   // c·x at X; 0 unless Status == Optimal
}

// Eps is the numeric tolerance used for pivots and feasibility decisions.
const Eps = 1e-9

// maxPivots bounds total pivot count as a defence against numeric
// stagnation; Bland's rule guarantees no cycling, so hitting the cap
// indicates a bug or a pathological input, reported as an error.
const maxPivots = 200_000

// ErrPivotLimit is returned when the simplex exceeds its pivot budget.
var ErrPivotLimit = errors.New("lp: pivot limit exceeded")

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: NumVars %d must be positive", p.NumVars)
	}
	if p.Objective != nil && len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), p.NumVars)
		}
		if c.Op != LE && c.Op != GE && c.Op != EQ {
			return fmt.Errorf("lp: constraint %d has invalid relation %d", i, int(c.Op))
		}
		for j, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: constraint %d coefficient %d is %v", i, j, v)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d RHS is %v", i, c.RHS)
		}
	}
	return nil
}

// tableau is the dense simplex state.
//
// Columns: [0, n) structural variables, [n, n+nSlack) slack/surplus,
// [n+nSlack, totalCols-1) artificial, last column RHS.
type tableau struct {
	rows  [][]float64
	basis []int // basis[r] = column basic in row r
	nCols int   // total columns including RHS
}

// Solve runs two-phase simplex.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := p.NumVars
	m := len(p.Constraints)

	// Count slack and artificial columns.
	nSlack := 0
	nArt := 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		op := c.Op
		// Normalize to non-negative RHS by flipping the row.
		if rhs < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	nCols := n + nSlack + nArt + 1
	t := &tableau{
		rows:  make([][]float64, m),
		basis: make([]int, m),
		nCols: nCols,
	}

	slackCol := n
	artCol := n + nSlack
	artCols := make([]int, 0, nArt)

	for i, c := range p.Constraints {
		row := make([]float64, nCols)
		sign := 1.0
		op := c.Op
		rhs := c.RHS
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flip(op)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		row[nCols-1] = rhs
		switch op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCols = append(artCols, artCol)
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCols = append(artCols, artCol)
			artCol++
		}
		t.rows[i] = row
	}

	// Phase 1: minimize sum of artificials, i.e. maximize -sum.
	if len(artCols) > 0 {
		obj := make([]float64, nCols-1)
		for _, a := range artCols {
			obj[a] = -1
		}
		val, err := t.optimize(obj, nil)
		if err != nil {
			return Solution{}, fmt.Errorf("lp: phase 1: %w", err)
		}
		if val < -Eps {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any residual artificial out of the basis (degenerate rows).
		t.evictArtificials(n + nSlack)
	}

	// Phase 2: maximize real objective, artificial columns forbidden.
	obj := make([]float64, nCols-1)
	if p.Objective != nil {
		copy(obj, p.Objective)
	}
	forbidden := make(map[int]bool, nArt)
	for _, a := range artCols {
		forbidden[a] = true
	}
	val, err := t.optimize(obj, forbidden)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded}, nil
		}
		return Solution{}, fmt.Errorf("lp: phase 2: %w", err)
	}

	x := make([]float64, n)
	for r, b := range t.basis {
		if b < n {
			x[b] = t.rows[r][nCols-1]
		}
	}
	return Solution{Status: Optimal, X: x, Objective: val}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// optimize maximizes obj over the current tableau using Bland's rule,
// returning the objective value. forbidden columns may not enter the
// basis.
func (t *tableau) optimize(obj []float64, forbidden map[int]bool) (float64, error) {
	m := len(t.rows)
	rhs := t.nCols - 1

	// Reduced costs: z_j - c_j maintained implicitly; compute the price
	// row from scratch each iteration (dense; fine at our sizes).
	for pivots := 0; pivots < maxPivots; pivots++ {
		// price[j] = c_B · B^{-1}A_j - c_j, but since rows already hold
		// B^{-1}A we can compute reduced cost directly.
		enter := -1
		for j := 0; j < rhs; j++ {
			if forbidden[j] {
				continue
			}
			red := obj[j]
			for r := 0; r < m; r++ {
				red -= obj[t.basis[r]] * t.rows[r][j]
			}
			if red > Eps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter == -1 {
			// Optimal.
			val := 0.0
			for r := 0; r < m; r++ {
				val += obj[t.basis[r]] * t.rows[r][rhs]
			}
			return val, nil
		}
		// Ratio test, Bland tie-break on smallest basis column.
		leave := -1
		best := math.Inf(1)
		for r := 0; r < m; r++ {
			a := t.rows[r][enter]
			if a > Eps {
				ratio := t.rows[r][rhs] / a
				if ratio < best-Eps || (ratio < best+Eps && (leave == -1 || t.basis[r] < t.basis[leave])) {
					best = ratio
					leave = r
				}
			}
		}
		if leave == -1 {
			return 0, errUnbounded
		}
		t.pivot(leave, enter)
	}
	return 0, ErrPivotLimit
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pv := prow[enter]
	for j := range prow {
		prow[j] /= pv
	}
	for r, row := range t.rows {
		if r == leave {
			continue
		}
		f := row[enter]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
	}
	t.basis[leave] = enter
}

// evictArtificials pivots residual artificial basics (value ~0 after a
// feasible phase 1) out in favour of any real column, or leaves degenerate
// rows alone when the whole row is zero.
func (t *tableau) evictArtificials(artStart int) {
	for r, b := range t.basis {
		if b < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t.rows[r][j]) > Eps {
				t.pivot(r, j)
				break
			}
		}
	}
}

func flip(op Relation) Relation {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// Feasible is a convenience wrapper: it reports whether the constraint
// system admits any x >= 0, ignoring the objective.
func Feasible(p *Problem) (bool, error) {
	q := &Problem{NumVars: p.NumVars, Constraints: p.Constraints}
	sol, err := Solve(q)
	if err != nil {
		return false, err
	}
	return sol.Status == Optimal, nil
}
