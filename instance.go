package partfeas

import (
	"context"
	"fmt"

	"partfeas/internal/core"
	"partfeas/internal/sim"
)

// Instance bundles the three inputs every feasibility question is asked
// about: the task set, the platform it runs on, and the per-machine
// scheduling policy. It is the unit of the context-first public API
// (TestCtx, MinAlphaCtx, SimulateCtx) and the unit the admission-control
// service caches testers by — one Instance value describes exactly one
// cached solver state.
type Instance struct {
	// Tasks is the sporadic task system under test.
	Tasks TaskSet
	// Platform is the uniform multiprocessor the tasks run on.
	Platform Platform
	// Scheduler is the per-machine policy (EDF or RMS). For simulation it
	// also selects the replay discipline: EDF replays under PolicyEDF, RMS
	// under PolicyRM.
	Scheduler Scheduler
}

// Validate checks the instance eagerly, naming the offending task or
// machine index. NewPlatform cannot reject bad speeds (it returns no
// error), so every public entry point calls this before any work: a NaN,
// zero, or infinite speed fails here with the machine identified instead
// of surfacing later from a distant internal check.
func (in Instance) Validate() error {
	if err := in.Tasks.Validate(); err != nil {
		return fmt.Errorf("partfeas: invalid task set: %w", err)
	}
	if err := in.Platform.Validate(); err != nil {
		return fmt.Errorf("partfeas: invalid platform: %w", err)
	}
	switch in.Scheduler {
	case EDF, RMS:
	default:
		return fmt.Errorf("partfeas: unknown scheduler %d", int(in.Scheduler))
	}
	return nil
}

// Policy returns the simulation discipline matching the instance's
// scheduler: PolicyEDF for EDF, PolicyRM for RMS.
func (in Instance) Policy() Policy {
	if in.Scheduler == RMS {
		return PolicyRM
	}
	return PolicyEDF
}

// schedulerForPolicy maps a simulation policy back to the scheduler whose
// admission test pairs with it; the deprecated Simulate wrappers use it
// to build the Instance the unified path expects.
func schedulerForPolicy(pol Policy) Scheduler {
	if pol == PolicyRM {
		return RMS
	}
	return EDF
}

// TestCtx runs the paper's first-fit feasibility test for the instance at
// speed augmentation alpha, observing ctx: a cancelled or expired context
// yields a PipelineError wrapping the cause. One test is a single
// polynomial first-fit pass; repeated queries on the same instance should
// use a Tester (or the admission service, which pools them).
func TestCtx(ctx context.Context, in Instance, alpha float64) (Report, error) {
	if err := in.Validate(); err != nil {
		return Report{}, err
	}
	t, err := core.NewTester(in.Tasks, in.Platform, in.Scheduler)
	if err != nil {
		return Report{}, err
	}
	// The Tester is discarded, so the Report's aliasing of its scratch is
	// harmless: the caller becomes the sole owner.
	return t.TestCtx(ctx, alpha)
}

// MinAlphaCtx bisects for the smallest augmentation in [lo, hi] at which
// the instance's test accepts, observing ctx between probes; ok is false
// when even hi does not suffice. See MinAlpha for the bracket contract.
func MinAlphaCtx(ctx context.Context, in Instance, lo, hi, tol float64) (alpha float64, ok bool, err error) {
	if err := in.Validate(); err != nil {
		return 0, false, err
	}
	t, err := core.NewTester(in.Tasks, in.Platform, in.Scheduler)
	if err != nil {
		return 0, false, err
	}
	return t.MinAlphaCtx(ctx, lo, hi, tol)
}

// SimulateOptions configures SimulateCtx. Assignment is the only required
// field; the zero value of everything else selects the defaults the
// pre-redesign Simulate used (synchronous periodic releases, one
// hyperperiod, GOMAXPROCS workers, no trace).
type SimulateOptions struct {
	// Assignment maps each task index to its machine index, as produced by
	// Report.Partition.Assignment. Required.
	Assignment []int
	// Alpha scales machine speeds, matching a Report produced at that
	// augmentation. Must be positive; a Report's Alpha field can be passed
	// through directly.
	Alpha float64
	// Horizon bounds the replay; <= 0 selects one hyperperiod.
	Horizon int64
	// Arrivals generates release times; nil means synchronous periodic
	// (PeriodicArrivals), the worst case for implicit deadlines.
	Arrivals ArrivalModel
	// Workers bounds concurrent per-machine replays; <= 0 means
	// GOMAXPROCS. Results are bit-identical at any setting.
	Workers int
	// Trace additionally records one execution trace per machine (for
	// Gantt rendering and audits); SimulateCtx returns nil traces when
	// false.
	Trace bool

	// Ctx is ignored by SimulateCtx (the context is its first parameter).
	//
	// Deprecated: retained only so pre-redesign option literals passed to
	// the deprecated SimulateOpts/SimulateTracedOpts wrappers — which do
	// honor it — still compile.
	Ctx context.Context
}

// SimulateCtx replays a partitioned schedule of the instance in the exact
// rational-arithmetic discrete-event simulator, under the policy matching
// the instance's scheduler (EDF → PolicyEDF, RMS → PolicyRM). It is the
// single simulation entry point the four deprecated Simulate variants
// collapse into: arrival model, worker count, horizon and tracing all
// live in opts, and cancellation flows through ctx with bounded latency
// (an interrupted replay returns a PipelineError naming the first machine
// that observed it). Traces are non-nil only when opts.Trace is set.
func SimulateCtx(ctx context.Context, in Instance, opts SimulateOptions) (SimulationResult, []*Trace, error) {
	if err := in.Validate(); err != nil {
		return SimulationResult{}, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	popts := sim.PartitionOptions{Arrivals: opts.Arrivals, Workers: opts.Workers, Ctx: ctx}
	if opts.Trace {
		return sim.SimulatePartitionTracedOpts(in.Tasks, in.Platform, opts.Assignment, in.Policy(), opts.Alpha, opts.Horizon, popts)
	}
	res, err := sim.SimulatePartitionOpts(in.Tasks, in.Platform, opts.Assignment, in.Policy(), opts.Alpha, opts.Horizon, popts)
	return res, nil, err
}
