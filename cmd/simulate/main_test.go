package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func writeFiles(t *testing.T, tasks, machines string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	tp := filepath.Join(dir, "tasks.json")
	mp := filepath.Join(dir, "machines.json")
	if err := os.WriteFile(tp, []byte(tasks), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, []byte(machines), 0o644); err != nil {
		t.Fatal(err)
	}
	return tp, mp
}

func TestRunEndToEnd(t *testing.T) {
	tp, mp := writeFiles(t,
		`{"tasks":[{"name":"a","wcet":1,"period":2},{"name":"b","wcet":1,"period":4}]}`,
		`{"machines":[{"speed":1},{"speed":1}]}`)
	if err := run(context.Background(), tp, mp, "edf", 1, 0, 40); err != nil {
		t.Errorf("EDF run: %v", err)
	}
	if err := run(context.Background(), tp, mp, "rms", 1.5, 8, 0); err != nil {
		t.Errorf("RMS run: %v", err)
	}
}

func TestRunRejectedSet(t *testing.T) {
	tp, mp := writeFiles(t,
		`{"tasks":[{"wcet":3,"period":4},{"wcet":3,"period":4}]}`,
		`{"machines":[{"speed":1}]}`)
	if err := run(context.Background(), tp, mp, "edf", 1, 0, 0); err == nil {
		t.Error("rejected set should error")
	}
}

func TestRunBadInputs(t *testing.T) {
	tp, mp := writeFiles(t,
		`{"tasks":[{"wcet":1,"period":2}]}`,
		`{"machines":[{"speed":1}]}`)
	if err := run(context.Background(), "", mp, "edf", 1, 0, 0); err == nil {
		t.Error("missing path accepted")
	}
	if err := run(context.Background(), tp, mp, "bogus", 1, 0, 0); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := run(context.Background(), tp, filepath.Join(t.TempDir(), "no.json"), "edf", 1, 0, 0); err == nil {
		t.Error("missing machines file accepted")
	}
}

func TestRunHyperperiodOverflowFallback(t *testing.T) {
	// Coprime large periods make the hyperperiod overflow; the tool must
	// fall back to a bounded horizon instead of failing.
	tp, mp := writeFiles(t,
		`{"tasks":[{"wcet":1,"period":99991},{"wcet":1,"period":99989},{"wcet":1,"period":99961},{"wcet":1,"period":99971}]}`,
		`{"machines":[{"speed":1}]}`)
	if err := run(context.Background(), tp, mp, "edf", 1, 0, 0); err != nil {
		t.Errorf("overflow fallback failed: %v", err)
	}
}
