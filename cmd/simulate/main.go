// Command simulate partitions a task set with the paper's test and
// replays the witness partition in the exact discrete-event simulator,
// reporting per-machine schedules and any deadline misses.
//
// Usage:
//
//	simulate -tasks tasks.json -machines machines.json -scheduler edf -alpha 1.5
//	simulate -tasks tasks.json -machines machines.json -horizon 5040
//	simulate -tasks tasks.json -machines machines.json -timeout 30s
//
// SIGINT/SIGTERM (or -timeout expiry) cancels the replay cooperatively;
// the command exits nonzero naming the interrupted machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"partfeas"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func main() {
	var (
		tasksPath    = flag.String("tasks", "", "path to task-set JSON (required)")
		machinesPath = flag.String("machines", "", "path to platform JSON (required)")
		scheduler    = flag.String("scheduler", "edf", "per-machine policy: edf or rms")
		alpha        = flag.Float64("alpha", 1, "speed augmentation α > 0")
		horizon      = flag.Int64("horizon", 0, "release horizon (0 = one hyperperiod)")
		gantt        = flag.Int("gantt", 0, "render an ASCII Gantt chart this many characters wide (0 = off)")
		timeout      = flag.Duration("timeout", 0, "wall-time limit for the replay (0 = none)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *tasksPath, *machinesPath, *scheduler, *alpha, *horizon, *gantt); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, tasksPath, machinesPath, scheduler string, alpha float64, horizon int64, gantt int) error {
	if tasksPath == "" || machinesPath == "" {
		return fmt.Errorf("-tasks and -machines are required")
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 0 {
		return fmt.Errorf("-alpha %v must be a positive finite number", alpha)
	}
	if gantt < 0 {
		return fmt.Errorf("-gantt %d must be non-negative", gantt)
	}
	tf, err := os.Open(tasksPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	ts, err := task.ReadJSON(tf)
	if err != nil {
		return err
	}
	mf, err := os.Open(machinesPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	plat, err := machine.ReadJSON(mf)
	if err != nil {
		return err
	}

	var sch partfeas.Scheduler
	switch strings.ToLower(scheduler) {
	case "edf":
		sch = partfeas.EDF
	case "rms", "rm":
		sch = partfeas.RMS
	default:
		return fmt.Errorf("unknown scheduler %q (want edf or rms)", scheduler)
	}

	rep, err := partfeas.Test(ts, plat, sch, alpha)
	if err != nil {
		return err
	}
	if !rep.Accepted {
		return fmt.Errorf("test rejected the task set at α=%.4f; nothing to simulate (failing task %v)",
			alpha, ts[rep.Partition.FailedTask])
	}
	fmt.Printf("partition accepted at α=%.4f under %v\n", alpha, sch)

	if horizon <= 0 {
		if hp, err := ts.Hyperperiod(); err == nil {
			horizon = hp
			fmt.Printf("horizon: one hyperperiod = %d\n", hp)
		} else {
			// Incommensurate periods: the hyperperiod overflows. Fall back
			// to a bounded window — long enough to exercise every task
			// many times, explicit so the output is honest about it.
			var maxP int64
			for _, tk := range ts {
				if tk.Period > maxP {
					maxP = tk.Period
				}
			}
			horizon = 20 * maxP
			fmt.Printf("horizon: hyperperiod too large; using 20×max period = %d (override with -horizon)\n", horizon)
		}
	}
	res, traces, err := partfeas.SimulateCtx(ctx,
		partfeas.Instance{Tasks: ts, Platform: plat, Scheduler: sch},
		partfeas.SimulateOptions{Assignment: rep.Partition.Assignment, Alpha: alpha, Horizon: horizon, Trace: true})
	if err != nil {
		return err
	}
	for j := range plat {
		mr := res.PerMachine[j]
		var names []string
		for i, mj := range rep.Partition.Assignment {
			if mj == j {
				names = append(names, ts[i].Name)
			}
		}
		fmt.Printf("machine %s (speed %.3g × α): tasks [%s]\n", plat[j].Name, plat[j].Speed, strings.Join(names, ", "))
		fmt.Printf("  jobs released=%d completed=%d preemptions=%d busy=%v makespan=%v misses=%d\n",
			mr.JobsReleased, mr.JobsCompleted, mr.Preemptions, mr.BusyTime, mr.Makespan, len(mr.Misses))
		for _, miss := range mr.Misses {
			fmt.Printf("  MISS: %v\n", miss)
		}
	}
	if res.TotalMisses == 0 {
		fmt.Printf("all %d jobs met their deadlines\n", res.TotalJobs)
	} else {
		fmt.Printf("%d deadline misses across %d jobs\n", res.TotalMisses, res.TotalJobs)
	}
	if gantt > 0 {
		ganttHorizon := horizon
		labels := make([]string, len(ts))
		for i, tk := range ts {
			labels[i] = tk.Name
		}
		fmt.Println("\nschedule (one glyph per task, '.' idle):")
		fmt.Print(partfeas.Gantt(traces, labels, ganttHorizon, gantt))
	}
	return nil
}
