package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestRunBadAddr(t *testing.T) {
	err := run("127.0.0.1:99999", time.Second, time.Second, time.Second, 1, 1, 16, 1, 1000, "", 0, 0)
	if err == nil {
		t.Fatal("run accepted an unbindable address")
	}
}

// TestRunSignalDrain boots the real command path on an ephemeral port,
// waits until it answers /healthz (so the signal handler is installed),
// then sends the process SIGINT and expects a clean, nil-error drain.
func TestRunSignalDrain(t *testing.T) {
	// Reserve a port, then hand its address to run. The tiny reuse window
	// between Close and run's own Listen is harmless on a loopback test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	errc := make(chan error, 1)
	go func() {
		errc <- run(addr, time.Second, 2*time.Second, 5*time.Second, 2, 2, 16, 8, 100000, "", 0, 0)
	}()

	up := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				up = true
				break
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("run exited before serving: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if !up {
		t.Fatal("server never answered /healthz")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain within 10s of SIGINT")
	}
}
