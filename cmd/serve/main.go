// Command serve runs the partfeas admission-control server: the paper's
// feasibility tests behind a JSON-over-HTTP API with a sharded
// reusable-tester cache, stateful admission sessions, per-request
// deadlines and a Prometheus-text /metrics endpoint.
//
// Usage:
//
//	serve                          # listen on :8377
//	serve -addr :9000 -timeout 5s
//
// Endpoints:
//
//	POST /v1/test        one feasibility test        {tasks, speeds|machines, scheduler, alpha}
//	POST /v1/minalpha    smallest accepted α          {…, lo, hi, tol}
//	POST /v1/analyze     full per-instance analysis   {…, exact_budget}
//	POST /v1/sessions    open an admission session    {…, alpha, placement}
//	GET/DELETE /v1/sessions/{id}
//	POST /v1/sessions/{id}/test     re-test           {alpha}
//	POST /v1/sessions/{id}/tasks    admit a task      {task, force}
//	DELETE /v1/sessions/{id}/tasks/{index}
//	POST /v1/sessions/{id}/wcet     incremental WCET  {index, wcet, force}
//	POST /v1/sessions/{id}/repartition  drift plan/apply  {apply, max_moves}
//	GET /metrics, /healthz, /debug/vars
//
// With -data-dir the session store is durable: every mutation is
// appended to a write-ahead log before its 200 is sent, snapshots bound
// recovery replay, and a restart reloads the store from disk. The
// -fsync-interval flag trades latency for loss window: writes reach the
// OS on every append (a process crash loses nothing acknowledged), but a
// power loss can drop up to one interval of acknowledged ops; 0 fsyncs
// on every append.
//
// SIGINT/SIGTERM drains gracefully: the listener closes, in-flight
// requests finish (bounded by -drain), the WAL group-commit buffer
// flushes and a final snapshot is written, then the process exits 0.
//
// With -coordinator the process is a cluster coordinator instead of a
// replica: it routes /v1/sessions/* to the owner replica by consistent
// hash of the session ID (-replicas lists their base URLs, -vnodes sets
// the ring's virtual-node count), answers stateless endpoints locally,
// health-checks replicas, and serves the /v1/cluster membership API
// (join / leave / rebalance / migrate).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partfeas/internal/cluster"
	"partfeas/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-request deadline (requests may lower it via timeout_ms)")
		maxTO    = flag.Duration("max-timeout", 120*time.Second, "upper clamp on any request deadline")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		shards   = flag.Int("shards", 16, "tester-cache shard count")
		maxIdle  = flag.Int("cache-idle", 4, "idle testers cached per instance")
		maxKeys  = flag.Int("cache-keys", 1024, "distinct instances cached pool-wide (LRU beyond)")
		sessions = flag.Int("max-sessions", 1024, "admission-session cap")
		budget   = flag.Int64("analyze-budget", 2_000_000, "default exact-adversary node budget for /v1/analyze")
		dataDir  = flag.String("data-dir", "", "durability directory (write-ahead log + snapshots); empty disables durability")
		fsyncInt = flag.Duration("fsync-interval", 5*time.Millisecond, "WAL group-commit fsync cadence; 0 fsyncs on every append (requires -data-dir)")
		snapEvry = flag.Int("snapshot-every", 1024, "ops between automatic snapshots; 0 disables automatic snapshots (requires -data-dir)")

		coord    = flag.Bool("coordinator", false, "run as a cluster coordinator instead of a replica")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (requires -coordinator)")
		vnodes   = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring (requires -coordinator)")
		healthIv = flag.Duration("health-interval", 2*time.Second, "replica health-probe cadence (requires -coordinator)")
	)
	flag.Parse()
	var err error
	if *coord {
		err = runCoordinator(*addr, *replicas, *vnodes, *healthIv, *drain)
	} else {
		err = run(*addr, *timeout, *maxTO, *drain, *shards, *maxIdle, *maxKeys, *sessions, *budget, *dataDir, *fsyncInt, *snapEvry)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func runCoordinator(addr, replicas string, vnodes int, healthIv, drain time.Duration) error {
	logger := log.New(os.Stderr, "", log.LstdFlags)
	var urls []string
	for _, u := range strings.Split(replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return errors.New("-coordinator requires -replicas (comma-separated base URLs)")
	}
	c := cluster.New(cluster.Config{
		Addr:           addr,
		Replicas:       urls,
		VNodes:         vnodes,
		HealthInterval: healthIv,
		Logf:           logger.Printf,
	})
	if err := c.Listen(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- c.Serve() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("serve: signal received, draining for up to %v", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := c.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func run(addr string, timeout, maxTO, drain time.Duration, shards, maxIdle, maxKeys, sessions int, budget int64, dataDir string, fsyncInt time.Duration, snapEvery int) error {
	logger := log.New(os.Stderr, "", log.LstdFlags)
	cfg := service.Config{
		Addr:              addr,
		DefaultTimeout:    timeout,
		MaxTimeout:        maxTO,
		PoolShards:        shards,
		PoolMaxIdlePerKey: maxIdle,
		PoolMaxKeys:       maxKeys,
		MaxSessions:       sessions,
		AnalyzeBudget:     budget,
		Logf:              logger.Printf,
	}
	var srv *service.Server
	if dataDir != "" {
		// The flag's 0 means fsync-per-append and its default means group
		// commit; the Config encodes those as negative and positive.
		cfg.DataDir = dataDir
		cfg.FsyncInterval = fsyncInt
		if fsyncInt == 0 {
			cfg.FsyncInterval = -1
		}
		cfg.SnapshotEvery = snapEvery
		if snapEvery == 0 {
			cfg.SnapshotEvery = -1
		}
		var err error
		srv, err = service.NewDurable(cfg)
		if err != nil {
			return err
		}
	} else {
		srv = service.New(cfg)
	}
	if err := srv.Listen(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		// Listener failed before any signal.
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Printf("serve: signal received, draining for up to %v", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
