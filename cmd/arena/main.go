// Command arena races placement policies on one deterministic arrival
// stream and reports how each fares.
//
// A scenario (a built-in preset or a JSON file) describes a platform
// and a stochastic-but-seeded workload: Poisson, bursty (two-state
// MMPP) or diurnal arrivals, uniform / heavy-tailed Pareto / bimodal
// utilizations, tenant churn (exponential lifetimes) and optional
// machine down/up churn. The stream is materialized once and fed,
// event for event, to one independent online engine per policy — so
// every difference in the scorecard is the policy's doing, never the
// workload's. Scores are byte-identical at any -workers value; only
// the wall-clock latency columns vary run to run.
//
// Usage:
//
//	arena                                     # smoke preset, all policies
//	arena -preset churn -workers 8            # machine+tenant churn race
//	arena -scenario sc.json -csv ticks.csv    # custom scenario, per-tick CSV
//	arena -policies best_fit,k_choices_4      # pick lanes
//	arena -o results/ARENA.json               # record a benchfmt suite
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"partfeas/internal/arena"
	"partfeas/internal/benchfmt"
	"partfeas/internal/online"
)

func main() {
	var (
		preset   = flag.String("preset", "smoke", "built-in scenario: "+strings.Join(arena.Presets(), ", "))
		scenario = flag.String("scenario", "", "scenario JSON file (overrides -preset)")
		policies = flag.String("policies", "", "comma-separated policy lanes (default: all of "+online.PolicyNames()+")")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent lane workers (scores are identical for any value)")
		seed     = flag.Uint64("seed", 0, "override the scenario seed (0 keeps the scenario's)")
		ticks    = flag.Int("ticks", 0, "override the scenario tick count (0 keeps the scenario's)")
		csvPath  = flag.String("csv", "", "write the per-tick scorecard CSV here")
		out      = flag.String("o", "", "write a benchfmt suite JSON here")
		note     = flag.String("note", "", "note recorded in the benchfmt suite")
	)
	flag.Parse()
	if err := run(os.Stdout, *preset, *scenario, *policies, *workers, *seed, *ticks, *csvPath, *out, *note); err != nil {
		fmt.Fprintln(os.Stderr, "arena:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, preset, scenario, policies string, workers int, seed uint64, ticks int, csvPath, out, note string) error {
	var sc arena.Scenario
	var err error
	if scenario != "" {
		sc, err = arena.LoadScenario(scenario)
	} else {
		sc, err = arena.Preset(preset)
	}
	if err != nil {
		return err
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if ticks != 0 {
		sc.Ticks = ticks
	}

	lanes := strings.Split(online.PolicyNames(), ", ")
	if policies != "" {
		lanes = strings.Split(policies, ",")
		for i := range lanes {
			lanes[i] = strings.TrimSpace(lanes[i])
		}
	}

	world, err := arena.NewWorld(sc, lanes)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := world.Run(workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	st := world.Stream()
	fmt.Fprintf(w, "arena: scenario %s: %d ticks, %d machines, %d arrivals, %d events; %d lanes in %v (%d workers)\n",
		res.Scenario.Name, sc.Ticks, sc.Machines, st.Arrivals, len(st.Events), len(res.Lanes), elapsed.Round(time.Millisecond), workers)
	fmt.Fprintf(w, "%-34s %9s %8s %8s %10s %8s %8s %10s\n",
		"lane", "accept", "evicted", "migr", "visited", "resid", "spread", "p99")
	sums := res.Summaries()
	for _, s := range sums {
		fmt.Fprintf(w, "%-34s %8.2f%% %8d %8d %10d %8d %8.3f %10v\n",
			s.Lane, 100*s.AcceptanceRatio, s.Evicted, s.Migrations, s.Visited,
			s.FinalResident, s.MeanSpread, time.Duration(s.P99Ns).Round(time.Microsecond))
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "arena: per-tick CSV written to %s\n", csvPath)
	}

	if out != "" {
		suite := benchfmt.Suite{
			Generated: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Bench:     "arena-" + res.Scenario.Name,
			Benchtime: fmt.Sprintf("%dticks", sc.Ticks),
			Note:      note,
		}
		for _, s := range sums {
			suite.Results = append(suite.Results, benchfmt.Result{
				Name:       "Arena/" + res.Scenario.Name + "/" + s.Lane,
				Iterations: int64(s.Offered),
				NsPerOp:    s.P99Ns,
				Extra: map[string]float64{
					"accept-ratio": s.AcceptanceRatio,
					"evicted":      float64(s.Evicted),
					"migrations":   float64(s.Migrations),
					"visited":      float64(s.Visited),
					"spread-mean":  s.MeanSpread,
				},
			})
		}
		if err := suite.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "arena: benchfmt suite written to %s\n", out)
	}
	return nil
}
