package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partfeas/internal/benchfmt"
)

// TestRunSmoke is the arenasmoke body: the smoke preset raced across
// all canonical policies must finish, write a CSV with one row per lane
// per tick, and record a well-formed benchfmt suite.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "ticks.csv")
	out := filepath.Join(dir, "arena.json")
	var buf bytes.Buffer
	if err := run(&buf, "smoke", "", "", 4, 0, 0, csv, out, "test"); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "first_fit_sorted") || !strings.Contains(buf.String(), "k_choices") {
		t.Fatalf("summary missing lanes:\n%s", buf.String())
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if want := 1 + 5*60; len(lines) != want { // header + 5 lanes × 60 ticks
		t.Fatalf("%d CSV lines, want %d", len(lines), want)
	}
	suite, err := benchfmt.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Results) != 5 {
		t.Fatalf("suite has %d results, want 5", len(suite.Results))
	}
	for _, r := range suite.Results {
		if !strings.HasPrefix(r.Name, "Arena/smoke/") || r.Iterations == 0 {
			t.Errorf("malformed result %+v", r)
		}
		if acc := r.Extra["accept-ratio"]; acc <= 0 || acc > 1 {
			t.Errorf("%s accept-ratio %v", r.Name, acc)
		}
	}
}

func TestRunScenarioFileAndOverrides(t *testing.T) {
	dir := t.TempDir()
	scPath := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scPath, []byte(`{"name":"filed","seed":3,"ticks":40,"machines":6,"arrival":{"kind":"diurnal","rate":2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "", scPath, "best_fit, worst_fit", 1, 9, 25, "", "", ""); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "scenario filed: 25 ticks") {
		t.Fatalf("tick override not applied:\n%s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "no-such-preset", "", "", 1, 0, 0, "", "", ""); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run(&buf, "smoke", "", "gravity_fit", 1, 0, 0, "", "", ""); err == nil || !strings.Contains(err.Error(), "gravity_fit") {
		t.Errorf("unknown policy: %v", err)
	}
}
