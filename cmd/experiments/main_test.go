package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partfeas/internal/experiments"
)

func TestRunSelectedWithCSV(t *testing.T) {
	dir := t.TempDir()
	cfg := experiments.Config{Seed: 1, Quick: true}
	if err := run(context.Background(), cfg, "E12", dir, ""); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "e12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "c_s") {
		t.Errorf("csv content: %q", string(b)[:60])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	if err := run(context.Background(), cfg, "E99", "", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadCSVDir(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	if err := run(context.Background(), cfg, "E12", "/dev/null/not-a-dir", ""); err == nil {
		t.Error("unusable csv dir accepted")
	}
}
