// Command experiments regenerates the evaluation tables E1–E12 described
// in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                      # full suite, text tables to stdout
//	experiments -run E1,E5 -quick    # selected experiments, reduced sizes
//	experiments -csv out/            # additionally write one CSV per table
//	experiments -seed 7 -trials 1000 # reproducible heavier run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"partfeas/internal/experiments"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E5) or 'all'")
		seed    = flag.Uint64("seed", 20160523, "RNG seed (default: IPDPS 2016 conference date)")
		trials  = flag.Int("trials", 0, "trials per cell (0 = per-experiment default)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		quick   = flag.Bool("quick", false, "reduced sizes/trials for a fast pass")
		csvDir  = flag.String("csv", "", "directory to also write per-table CSVs into")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, Trials: *trials, Workers: *workers, Quick: *quick}
	if err := run(cfg, *runList, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, runList, csvDir string) error {
	ids := experiments.IDs()
	if runList != "all" && runList != "" {
		ids = nil
		for _, id := range strings.Split(runList, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tab, err := experiments.Run(id, cfg, os.Stdout)
		if err != nil {
			return err
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		if csvDir != "" {
			path := filepath.Join(csvDir, strings.ToLower(id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("suite complete in %v (seed=%d quick=%v)\n", time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Quick)
	return nil
}
