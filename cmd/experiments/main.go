// Command experiments regenerates the evaluation tables E1–E12 described
// in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                      # full suite, text tables to stdout
//	experiments -run E1,E5 -quick    # selected experiments, reduced sizes
//	experiments -csv out/            # additionally write one CSV per table
//	experiments -seed 7 -trials 1000 # reproducible heavier run
//	experiments -checkpoint run.ckpt # resumable: Ctrl-C, rerun, continue
//	experiments -timeout 10m         # bound the whole run's wall time
//
// Long runs are interruptible: SIGINT/SIGTERM cancels the trial pools,
// flushes the checkpoint (when -checkpoint is set) and exits nonzero.
// Rerunning with the same -checkpoint, -seed and -trials skips the
// completed trials and produces tables bit-identical to an uninterrupted
// run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"partfeas"
	"partfeas/internal/experiments"
)

func main() {
	var (
		runList  = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E5) or 'all'")
		seed     = flag.Uint64("seed", 20160523, "RNG seed (default: IPDPS 2016 conference date)")
		trials   = flag.Int("trials", 0, "trials per cell (0 = per-experiment default)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		quick    = flag.Bool("quick", false, "reduced sizes/trials for a fast pass")
		csvDir   = flag.String("csv", "", "directory to also write per-table CSVs into")
		ckptPath = flag.String("checkpoint", "", "checkpoint file for resumable runs (\"\" = off)")
		timeout  = flag.Duration("timeout", 0, "overall wall-time limit (0 = none)")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, Trials: *trials, Workers: *workers, Quick: *quick}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	err := run(ctx, cfg, *runList, *csvDir, *ckptPath)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	if partfeas.IsCanceled(err) && *ckptPath != "" {
		fmt.Fprintf(os.Stderr, "experiments: progress saved; rerun with -checkpoint %s to resume\n", *ckptPath)
	}
	os.Exit(1)
}

func run(ctx context.Context, cfg experiments.Config, runList, csvDir, ckptPath string) error {
	if ckptPath != "" {
		ck, err := experiments.OpenCheckpoint(ckptPath, cfg.Seed)
		if err != nil {
			return err
		}
		if n := ck.Completed(); n > 0 {
			fmt.Printf("resuming from %s: %d completed trials\n", ckptPath, n)
		}
		cfg.Checkpoint = ck
		// The executor flushes on every section exit, but flush once more
		// on the way out so an error path never loses recorded trials.
		defer ck.Flush()
	}
	ids := experiments.IDs()
	if runList != "all" && runList != "" {
		ids = nil
		for _, id := range strings.Split(runList, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tab, err := experiments.RunCtx(ctx, id, cfg, os.Stdout)
		if err != nil {
			return err
		}
		fmt.Printf("(%s finished in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
		if csvDir != "" {
			path := filepath.Join(csvDir, strings.ToLower(id)+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("suite complete in %v (seed=%d quick=%v)\n", time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Quick)
	return nil
}
