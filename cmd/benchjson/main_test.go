package main

import (
	"reflect"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	for _, tc := range []struct {
		line string
		want Result
		ok   bool
	}{
		{
			line: "BenchmarkMinAlpha-8   \t6266\t     58375 ns/op\t    3840 B/op\t      15 allocs/op",
			want: Result{Name: "BenchmarkMinAlpha", Iterations: 6266, NsPerOp: 58375, BytesPerOp: 3840, AllocsPerOp: 15},
			ok:   true,
		},
		{
			line: "BenchmarkSolverReuse/solver-4 \t304632\t       986.6 ns/op\t       0 B/op\t       0 allocs/op",
			want: Result{Name: "BenchmarkSolverReuse/solver", Iterations: 304632, NsPerOp: 986.6},
			ok:   true,
		},
		{
			line: "BenchmarkNoMem \t100\t 12 ns/op",
			want: Result{Name: "BenchmarkNoMem", Iterations: 100, NsPerOp: 12},
			ok:   true,
		},
		{
			// testing.B.ReportMetric custom units land in Extra.
			line: "BenchmarkServeTest-8 \t912\t 131000 ns/op\t 220.5 p50-µs/op\t 850 p99-µs/op\t 7633 req/s",
			want: Result{Name: "BenchmarkServeTest", Iterations: 912, NsPerOp: 131000,
				Extra: map[string]float64{"p50-µs/op": 220.5, "p99-µs/op": 850, "req/s": 7633}},
			ok: true,
		},
		{line: "PASS", ok: false},
		{line: "ok  \tpartfeas\t1.718s", ok: false},
		{line: "goos: linux", ok: false},
		{line: "BenchmarkBroken \t100\t twelve ns/op", ok: false},
	} {
		got, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parse(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parse(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}
