package main

import (
	"testing"

	"partfeas/internal/benchfmt"
)

func TestCheckBaseline(t *testing.T) {
	prior := benchfmt.Suite{Results: []benchfmt.Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
	}}
	ok := benchfmt.Suite{Results: []benchfmt.Result{
		{Name: "BenchmarkA", NsPerOp: 120},
		{Name: "BenchmarkB", NsPerOp: 90},
	}}
	if err := checkBaseline(prior, ok, "ns_per_op", 0.5); err != nil {
		t.Errorf("within-bound run failed the gate: %v", err)
	}
	bad := benchfmt.Suite{Results: []benchfmt.Result{
		{Name: "BenchmarkA", NsPerOp: 170},
		{Name: "BenchmarkB", NsPerOp: 90},
	}}
	if err := checkBaseline(prior, bad, "ns_per_op", 0.5); err == nil {
		t.Error("70% regression passed a 50% gate")
	}
	// A metric neither side records cannot fail the gate.
	if err := checkBaseline(prior, bad, "p99-µs", 0.5); err != nil {
		t.Errorf("absent metric failed the gate: %v", err)
	}
}
