// Command benchjson runs the repository's benchmark suite (the E1–E20
// kernels plus the solver/bisection benchmarks in bench_test.go) via
// `go test -bench` and records the results as a machine-readable JSON
// file, so successive PRs can track the performance trajectory.
//
// Usage:
//
//	benchjson                              # full suite -> BENCH_1.json
//	benchjson -bench 'MinAlpha|Solver'     # subset
//	benchjson -benchtime 0.2s -o results/BENCH_2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line. Extra carries custom units emitted via
// testing.B.ReportMetric (e.g. the serve benchmarks' p50/p99 latency and
// requests-per-second figures), keyed by the unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Suite is the file-level document.
type Suite struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// gomaxprocsSuffix strips the benchmark name's -N GOMAXPROCS suffix so
// records compare across hosts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one `go test -bench` output line such as
//
//	BenchmarkMinAlpha-8   6266   58375 ns/op   3840 B/op   15 allocs/op
//	BenchmarkServeTest-8  912    131k ns/op    220 p50-µs  850 p99-µs
//
// The fields after the iteration count are (value, unit) pairs: ns/op,
// B/op and allocs/op land in the standard Result fields, any other unit
// (testing.B.ReportMetric) lands in Extra. A line without ns/op is not a
// benchmark result.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
		benchtime = flag.String("benchtime", "0.3s", "per-benchmark budget (go test -benchtime)")
		pkg       = flag.String("pkg", ".", "package containing the benchmarks")
		out       = flag.String("o", "BENCH_1.json", "output JSON path")
		short     = flag.Bool("short", false, "pass -short to go test")
		note      = flag.String("note", "", "free-form label recorded in the suite document")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *pkg, *out, *short, *note); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg, out string, short bool, note string) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime}
	if short {
		args = append(args, "-short")
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	suite := Suite{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		Benchtime: benchtime,
		Note:      note,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if r, ok := parseBenchLine(strings.TrimSpace(line)); ok {
			suite.Results = append(suite.Results, r)
		}
	}
	if len(suite.Results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in output:\n%s", bench, raw)
	}
	doc, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(suite.Results), out)
	return nil
}
