// Command benchjson runs the repository's benchmark suite (the E1–E20
// kernels plus the solver/bisection and online-engine benchmarks) via
// `go test -bench` and records the results as a machine-readable JSON
// file, so successive PRs can track the performance trajectory.
//
// With -baseline it also diffs the fresh run against a prior results
// file and exits nonzero when the named metric regressed beyond the
// bound — the CI smoke targets use this as their performance gate.
//
// Usage:
//
//	benchjson                              # full suite -> BENCH_1.json
//	benchjson -bench 'MinAlpha|Solver'     # subset
//	benchjson -benchtime 0.2s -o results/BENCH_2.json
//	benchjson -baseline results/BENCH_4.json -max-regress 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"partfeas/internal/benchfmt"
)

func main() {
	var (
		bench      = flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
		benchtime  = flag.String("benchtime", "0.3s", "per-benchmark budget (go test -benchtime)")
		pkg        = flag.String("pkg", ".", "package(s) containing the benchmarks, space separated")
		out        = flag.String("o", "BENCH_1.json", "output JSON path")
		short      = flag.Bool("short", false, "pass -short to go test")
		note       = flag.String("note", "", "free-form label recorded in the suite document")
		baseline   = flag.String("baseline", "", "prior results/BENCH_N.json to diff against")
		metric     = flag.String("metric", "ns_per_op", "metric gated by -baseline (ns_per_op, allocs_per_op, or an extra unit)")
		maxRegress = flag.Float64("max-regress", 0.5, "fail when -baseline shows the metric worse by more than this fraction")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *pkg, *out, *short, *note, *baseline, *metric, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg, out string, short bool, note, baseline, metric string, maxRegress float64) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime}
	if short {
		args = append(args, "-short")
	}
	args = append(args, strings.Fields(pkg)...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	suite := benchfmt.Suite{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		Benchtime: benchtime,
		Note:      note,
		Results:   benchfmt.ParseOutput(raw),
	}
	if len(suite.Results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q in output:\n%s", bench, raw)
	}
	if err := suite.Write(out); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(suite.Results), out)
	if baseline == "" {
		return nil
	}
	prior, err := benchfmt.Load(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return checkBaseline(prior, suite, metric, maxRegress)
}

// checkBaseline is the regression gate: every shared benchmark whose
// metric got worse by more than maxRegress fails the run.
func checkBaseline(prior, suite benchfmt.Suite, metric string, maxRegress float64) error {
	regs := benchfmt.Compare(prior, suite, metric, maxRegress)
	if len(regs) == 0 {
		fmt.Printf("baseline check passed: no %s regression over %.0f%%\n", metric, maxRegress*100)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
	}
	return fmt.Errorf("%d benchmark(s) regressed %s beyond %.0f%% of baseline", len(regs), metric, maxRegress*100)
}
