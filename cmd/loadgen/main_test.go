package main

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"partfeas/internal/benchfmt"
)

// TestRunInProcess is the loadgen smoke: a short open-loop run against
// an in-process server must finish with zero request errors and record a
// well-formed benchfmt suite covering every endpoint in the mix — with
// a balanced -mix and Pareto WCETs on, that includes tail, interior and
// batch admission paths as separate rows.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	if err := run(&buf, "", 400, 500*time.Millisecond, 4, 1, 0.5, 1.5, "implicit", "", 0.5, out, "smoke", 0, "", 0, 0); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	suite, err := benchfmt.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Results) != kindCount {
		t.Fatalf("suite covers %d endpoints, want %d:\n%s", len(suite.Results), kindCount, buf.String())
	}
	seen := map[string]bool{}
	for _, r := range suite.Results {
		if !strings.HasPrefix(r.Name, "Loadgen/") || r.Iterations == 0 {
			t.Errorf("malformed result %+v", r)
		}
		seen[strings.TrimPrefix(r.Name, "Loadgen/")] = true
		if r.Extra["errors"] != 0 {
			t.Errorf("%s recorded %g errors", r.Name, r.Extra["errors"])
		}
		if r.Extra["p99-µs/op"] < r.Extra["p50-µs/op"] {
			t.Errorf("%s: p99 %g below p50 %g", r.Name, r.Extra["p99-µs/op"], r.Extra["p50-µs/op"])
		}
	}
	for _, path := range []string{"task_add_tail", "task_add_interior", "task_add_batch"} {
		if !seen[path] {
			t.Errorf("suite missing admission path %q:\n%s", path, buf.String())
		}
	}
}

// TestRunDBFSuite drives the constrained-deadline suite: the run must
// finish with zero errors against an in-process server, skip the
// repartition endpoint (constrained sessions refuse it), and report
// per-tier hit rates that account for every admission decision.
func TestRunDBFSuite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dbf.json")
	var buf bytes.Buffer
	if err := run(&buf, "", 400, 500*time.Millisecond, 4, 1, 0.5, 0, "dbf", "", 0.4, out, "dbf smoke", 0, "", 0, 0); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	suite, err := benchfmt.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Bench != "loadgen-dbf" {
		t.Errorf("bench = %q, want loadgen-dbf", suite.Bench)
	}
	var tiers *benchfmt.Result
	for i, r := range suite.Results {
		if r.Name == "Loadgen/repartition" {
			t.Errorf("dbf suite hit the repartition endpoint: %+v", r)
		}
		if r.Name == "Loadgen/tier_hit_rate" {
			tiers = &suite.Results[i]
		}
	}
	if tiers == nil {
		t.Fatalf("suite missing tier hit rates:\n%s", buf.String())
	}
	if tiers.Iterations == 0 {
		t.Fatalf("no tier decisions recorded:\n%s", buf.String())
	}
	sum := 0.0
	for _, path := range tierPaths {
		rate, ok := tiers.Extra[path]
		if !ok || rate < 0 || rate > 1 {
			t.Errorf("tier %q rate %v out of range", path, rate)
		}
		sum += rate
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("tier rates sum to %v, want 1", sum)
	}
}

// TestTaskGenMix pins the error-diffusion property: over n adds the
// interior count is within one of n*mix, regardless of rng state.
func TestTaskGenMix(t *testing.T) {
	for _, mix := range []float64{0, 0.25, 0.5, 0.9, 1} {
		g := &taskGen{rng: rand.New(rand.NewSource(7)), mix: mix, pareto: 1.2}
		interior := 0
		const n = 200
		for i := 0; i < n; i++ {
			kind, body := g.add()
			if kind == kindInteriorAdd {
				interior++
			}
			if !strings.HasPrefix(body, `{"task":{"wcet":`) {
				t.Fatalf("mix %v: malformed body %q", mix, body)
			}
		}
		if want := mix * n; math.Abs(float64(interior)-want) > 1 {
			t.Errorf("mix %v: %d/%d interior adds, want ~%g", mix, interior, n, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.5); q != 6 {
		t.Errorf("p50 = %d, want 6", q)
	}
	if q := quantile(sorted, 0.999); q != 10 {
		t.Errorf("p999 = %d, want 10", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 0, time.Millisecond, 1, 1, 0.5, 0, "implicit", "", 0.5, "", "", 0, "", 0, 0); err == nil {
		t.Error("rate 0 accepted")
	}
	if err := run(&buf, "", 100, time.Millisecond, 1, 1, 1.5, 0, "implicit", "", 0.5, "", "", 0, "", 0, 0); err == nil {
		t.Error("mix 1.5 accepted")
	}
	if err := run(&buf, "", 100, time.Millisecond, 1, 1, 0.5, -1, "implicit", "", 0.5, "", "", 0, "", 0, 0); err == nil {
		t.Error("pareto -1 accepted")
	}
	if err := run(&buf, "", 100, time.Millisecond, 1, 1, 0.5, 0, "arbitrary", "", 0.5, "", "", 0, "", 0, 0); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run(&buf, "", 100, time.Millisecond, 1, 1, 0.5, 0, "dbf", "", 0, "", "", 0, "", 0, 0); err == nil {
		t.Error("deadline-ratio 0 accepted for dbf suite")
	}
	if err := run(&buf, "", 100, time.Millisecond, 1, 1, 0.5, 0, "dbf", "", 1.5, "", "", 0, "", 0, 0); err == nil {
		t.Error("deadline-ratio 1.5 accepted")
	}
	if err := run(&buf, "", 100, time.Millisecond, 1, 1, 0.5, 0, "implicit", "gravity_fit", 0.5, "", "", 0, "", 0, 0); err == nil || !strings.Contains(err.Error(), "gravity_fit") {
		t.Errorf("unknown policy: %v", err)
	}
}

// TestRunWithPolicy drives the load session under a non-default
// placement policy: the session create carries the policy name and
// every mixed endpoint must still answer 200.
func TestRunWithPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 300, 300*time.Millisecond, 4, 1, 0.5, 0, "implicit", "best_fit", 0.5, "", "", 0, "", 0, 0); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
}
