package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"partfeas/internal/benchfmt"
)

// TestRunInProcess is the loadgen smoke: a short open-loop run against
// an in-process server must finish with zero request errors and record a
// well-formed benchfmt suite covering every endpoint in the mix.
func TestRunInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	if err := run(&buf, "", 400, 500*time.Millisecond, 4, 1, out, "smoke", 0); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	suite, err := benchfmt.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Results) != kindCount {
		t.Fatalf("suite covers %d endpoints, want %d:\n%s", len(suite.Results), kindCount, buf.String())
	}
	for _, r := range suite.Results {
		if !strings.HasPrefix(r.Name, "Loadgen/") || r.Iterations == 0 {
			t.Errorf("malformed result %+v", r)
		}
		if r.Extra["errors"] != 0 {
			t.Errorf("%s recorded %g errors", r.Name, r.Extra["errors"])
		}
		if r.Extra["p99-µs/op"] < r.Extra["p50-µs/op"] {
			t.Errorf("%s: p99 %g below p50 %g", r.Name, r.Extra["p99-µs/op"], r.Extra["p50-µs/op"])
		}
	}
}

func TestQuantile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.5); q != 6 {
		t.Errorf("p50 = %d, want 6", q)
	}
	if q := quantile(sorted, 0.999); q != 10 {
		t.Errorf("p999 = %d, want 10", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
}

func TestRunRejectsBadRate(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 0, time.Millisecond, 1, 1, "", "", 0); err == nil {
		t.Error("rate 0 accepted")
	}
}
