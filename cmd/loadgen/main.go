// Command loadgen drives the admission-control server with an open-loop
// Poisson workload and reports per-endpoint latency quantiles.
//
// Open-loop means arrivals are scheduled ahead of time from an
// exponential inter-arrival process at the requested rate, and each
// request's latency is measured from its *scheduled* arrival — so when
// the server falls behind, queueing delay shows up in the tail instead
// of silently throttling the generator (the coordinated-omission trap
// closed-loop harnesses fall into).
//
// The request mix exercises the stateless test endpoint plus one shared
// admission session (reads, incremental admits, batch admits, WCET
// updates and repartition plans); every request in the mix answers 200
// on a healthy server (admission rejections are 200 + rolled_back), so
// any error is a real failure and `-max-errors 0` (the default, used by
// `make loadsmoke`) turns it into a nonzero exit.
//
// Single-task admits come in two flavors reported separately, because
// their server-side cost differs by orders of magnitude: tail adds
// carry tiny utilization and append at the end of the sorted order,
// interior adds carry resident-scale utilization and land mid-order,
// forcing a suffix replay. `-mix` sets the interior fraction of add
// traffic (spread deterministically by error diffusion, so a given
// mix always produces the same add sequence), and `-pareto` switches
// WCETs to a heavy-tailed Pareto draw with the paired period scaled to
// hold utilization at the flavor's target.
//
// `-suite dbf` switches the run to a constrained-deadline session:
// generated tasks carry relative deadlines drawn with D/T uniform in
// [`-deadline-ratio`, 1], admissions route through the tiered DBF
// pipeline, and the summary reports each tier's hit rate (density /
// dbf_approx / dbf_exact, scraped from /metrics) alongside the latency
// quantiles. Repartition is not part of the dbf mix — constrained
// sessions refuse it — so that slot carries an extra tail admit.
//
// With `-data-dir` the in-process server runs durably (write-ahead log
// + snapshots), and `-crashes N` kills it — no final fsync, no final
// snapshot, exactly a process kill — and restarts it from the same
// directory N times while the load keeps arriving. Requests caught in a
// blackout window count as errors (so `-max-errors`, unless set
// explicitly, is not enforced in crash mode); after the last restart the
// run verifies the load session survived recovery and reports the
// restart count.
//
// With `-replicas N` the load runs against an in-process cluster: N
// replicas behind a coordinator that routes each session op to its
// owner by consistent hash. The summary then splits latency by shard —
// which replica answered (from the X-Shard header the coordinator
// stamps) versus requests the coordinator answered locally — and
// `-crashes` kills and restarts a *random replica* instead of the whole
// server (requires -data-dir so the victim recovers its sessions).
// `-addr` also accepts a comma-separated list of targets; each gets its
// own load session and the arrival stream round-robins across them.
//
// Usage:
//
//	loadgen                                  # in-process server, 200 req/s for 2s
//	loadgen -data-dir /tmp/pf -crashes 3     # kill/restart under load, thrice
//	loadgen -replicas 3 -data-dir /tmp/pfc -crashes 2   # 3-shard cluster, kill random replicas
//	loadgen -addr http://127.0.0.1:8377 -rate 1000 -duration 10s -clients 32
//	loadgen -mix 0.9 -pareto 1.5             # interior-heavy, heavy-tailed WCETs
//	loadgen -suite dbf -deadline-ratio 0.4   # constrained deadlines, tiered admission
//	loadgen -policy best_fit                 # session under a non-default placement policy
//	loadgen -o results/LOADGEN.json          # record a benchfmt suite
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"partfeas/internal/benchfmt"
	"partfeas/internal/cluster"
	"partfeas/internal/online"
	"partfeas/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target base URL; empty starts an in-process server")
		rate      = flag.Float64("rate", 200, "mean arrival rate, requests/second (Poisson)")
		duration  = flag.Duration("duration", 2*time.Second, "generation window")
		clients   = flag.Int("clients", 8, "concurrent worker connections")
		seed      = flag.Int64("seed", 1, "arrival-process seed")
		mix       = flag.Float64("mix", 0.5, "interior fraction of single-task admits, in [0,1]")
		pareto    = flag.Float64("pareto", 0, "Pareto tail index for WCET draws; 0 keeps WCETs fixed")
		suite     = flag.String("suite", "implicit", `workload suite: "implicit" (D = T) or "dbf" (constrained deadlines, tiered admission)`)
		policy    = flag.String("policy", "", "session placement policy ("+online.PolicyNames()+`; default "" lets the server pick first_fit_sorted)`)
		dlRatio   = flag.Float64("deadline-ratio", 0.5, "dbf suite: lower bound of the uniform D/T draw, in (0,1]")
		out       = flag.String("o", "", "write per-endpoint results as a benchfmt JSON suite")
		note      = flag.String("note", "", "free-form label recorded in the suite document")
		maxErrors = flag.Int("max-errors", 0, "exit nonzero when more requests than this fail")
		dataDir   = flag.String("data-dir", "", "run the in-process server durably from this directory (WAL + snapshots)")
		crashes   = flag.Int("crashes", 0, "with -data-dir: kill and restart the in-process server (or a random replica with -replicas) this many times during the run")
		replicasN = flag.Int("replicas", 0, "start an in-process cluster: this many replicas behind a coordinator (0 runs a single server)")
	)
	flag.Parse()
	if *policy != "" {
		// Reject unknown policies before any load is generated: a typo
		// should die at flag parsing, not as a mid-run session 400.
		if _, err := online.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -policy:", err)
			os.Exit(2)
		}
	}
	if *crashes > 0 {
		// Blackout-window failures are the point of crash mode, so the
		// error budget only applies when the caller set one explicitly.
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "max-errors" })
		if !explicit {
			*maxErrors = -1
		}
	}
	if err := run(os.Stdout, *addr, *rate, *duration, *clients, *seed, *mix, *pareto, *suite, *policy, *dlRatio, *out, *note, *maxErrors, *dataDir, *crashes, *replicasN); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// job is one scheduled arrival: the endpoint to hit, the request body
// for the admit kinds (generated up front in the single-threaded arrival
// loop so the seeded rng stays race-free), and the instant the open-loop
// process emitted it.
type job struct {
	kind   int
	body   string
	target int // index into the target list (round-robin with -addr a,b,c)
	sched  time.Time
}

// endpoint kinds, reported separately so the orders-of-magnitude cost
// gap between tail and interior admits shows up in the summary instead
// of averaging away.
const (
	kindTest        = iota // POST /v1/test (stateless, pool-cached)
	kindSessionGet         // GET /v1/sessions/{id}
	kindTailAdd            // POST /v1/sessions/{id}/tasks, tiny utilization (sorted tail)
	kindInteriorAdd        // POST /v1/sessions/{id}/tasks, resident-scale utilization (suffix replay)
	kindBatchAdd           // POST /v1/sessions/{id}/admit-batch, mixed best-effort batch
	kindWCET               // POST /v1/sessions/{id}/wcet
	kindRepartition        // POST /v1/sessions/{id}/repartition (plan only)
	kindCount
)

var kindNames = [kindCount]string{"test", "session_get", "task_add_tail", "task_add_interior", "task_add_batch", "wcet", "repartition"}

// Utilization targets for generated tasks. Tail adds sit far below the
// session residents (u 0.25–0.3) so they append at the sorted tail;
// interior adds land inside the resident range so every one forces a
// suffix replay. The gap between the bands keeps a run's adds from
// drifting across flavors as the set fills.
const (
	tailU       = 0.02
	interiorULo = 0.20
	interiorUHi = 0.28
	batchSize   = 4
	maxParetoWC = 1 << 20
)

// taskGen produces admit request bodies from the seeded rng. The
// tail/interior decision uses error diffusion rather than a coin flip:
// the interior fraction of the first n adds is always within one task of
// n*mix, so two runs at the same mix carry the same add sequence even
// though WCET draws consume rng state.
type taskGen struct {
	rng    *rand.Rand
	mix    float64
	pareto float64
	// dlRatio > 0 switches generated tasks to constrained deadlines:
	// D/T is drawn uniform in [dlRatio, 1] and clamped to D ≥ C. Zero
	// keeps deadlines implicit (no deadline field on the wire).
	dlRatio float64
	acc     float64
}

// taskJSON renders one task object, with the deadline field only when
// the generator runs in constrained mode.
func (g *taskGen) taskJSON(w, p int64) string {
	if g.dlRatio <= 0 {
		return fmt.Sprintf(`{"wcet":%d,"period":%d}`, w, p)
	}
	d := int64(float64(p) * (g.dlRatio + (1-g.dlRatio)*g.rng.Float64()))
	if d < w {
		d = w
	}
	if d > p {
		d = p
	}
	return fmt.Sprintf(`{"wcet":%d,"period":%d,"deadline":%d}`, w, p, d)
}

// wcet draws one WCET: fixed when -pareto is off, otherwise
// Pareto(xm=1, alpha) via inverse-CDF, clamped so the paired period
// stays well inside int64. The caller scales the period to hold
// utilization at the flavor's target, so heavy tail draws stress the
// magnitude arithmetic without moving the task's sorted position.
func (g *taskGen) wcet() int64 {
	if g.pareto <= 0 {
		return 3
	}
	x := math.Pow(1-g.rng.Float64(), -1/g.pareto)
	if x > maxParetoWC {
		x = maxParetoWC
	}
	return int64(math.Ceil(x))
}

// periodFor pairs a period with w so the task's utilization is u.
func periodFor(w int64, u float64) int64 {
	p := int64(math.Ceil(float64(w) / u))
	if p < w {
		p = w
	}
	return p
}

// add emits one single-task admit: the flavor kind and its body.
func (g *taskGen) add() (int, string) {
	kind, u := kindTailAdd, tailU
	if g.acc += g.mix; g.acc >= 1 {
		g.acc--
		kind = kindInteriorAdd
		u = interiorULo + (interiorUHi-interiorULo)*g.rng.Float64()
	}
	w := g.wcet()
	return kind, `{"task":` + g.taskJSON(w, periodFor(w, u)) + `}`
}

// batch emits one best-effort admit-batch body alternating tail and
// interior flavors, so a single call exercises the merged replay over
// scattered insertion points.
func (g *taskGen) batch() string {
	var sb strings.Builder
	sb.WriteString(`{"tasks":[`)
	for i := 0; i < batchSize; i++ {
		u := tailU
		if i%2 == 1 {
			u = interiorULo + (interiorUHi-interiorULo)*g.rng.Float64()
		}
		w := g.wcet()
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(g.taskJSON(w, periodFor(w, u)))
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// epStats accumulates one endpoint's outcomes; quantiles are computed
// exactly from the recorded samples at report time.
type epStats struct {
	mu        sync.Mutex
	durations []time.Duration
	errors    int
}

func (st *epStats) record(d time.Duration, failed bool) {
	st.mu.Lock()
	st.durations = append(st.durations, d)
	if failed {
		st.errors++
	}
	st.mu.Unlock()
}

// quantile returns the q-quantile of the sorted sample set.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(w io.Writer, addr string, rate float64, duration time.Duration, clients int, seed int64, mix, pareto float64, suiteName, policy string, dlRatio float64, out, note string, maxErrors int, dataDir string, crashes, replicasN int) error {
	if !(rate > 0) {
		return fmt.Errorf("rate %v must be positive", rate)
	}
	if mix < 0 || mix > 1 || math.IsNaN(mix) {
		return fmt.Errorf("mix %v must be in [0,1]", mix)
	}
	if pareto < 0 || math.IsNaN(pareto) {
		return fmt.Errorf("pareto %v must be ≥ 0", pareto)
	}
	if suiteName != "implicit" && suiteName != "dbf" {
		return fmt.Errorf("suite %q must be \"implicit\" or \"dbf\"", suiteName)
	}
	dbfSuite := suiteName == "dbf"
	if policy != "" {
		if _, err := online.ParsePolicy(policy); err != nil {
			return err
		}
	}
	if dbfSuite && !(dlRatio > 0 && dlRatio <= 1) {
		return fmt.Errorf("deadline-ratio %v must be in (0,1]", dlRatio)
	}
	if clients < 1 {
		clients = 1
	}
	if crashes > 0 && (dataDir == "" || addr != "") {
		return fmt.Errorf("-crashes requires -data-dir and an in-process server (empty -addr)")
	}
	if replicasN > 0 && addr != "" {
		return fmt.Errorf("-replicas starts an in-process cluster; it conflicts with -addr")
	}
	if replicasN < 0 {
		return fmt.Errorf("replicas %d must be ≥ 0", replicasN)
	}
	var restarter crasher
	switch {
	case replicasN > 0:
		h, err := startCluster(replicasN, dataDir, seed)
		if err != nil {
			return err
		}
		restarter = h
		defer h.close()
		// One load session per replica, all through the coordinator: the
		// ring spreads the session IDs, so the shard report exercises
		// every replica instead of a single owner.
		addr = strings.TrimSuffix(strings.Repeat(h.addr+",", replicasN), ",")
		mode := ""
		if dataDir != "" {
			mode = fmt.Sprintf(" (durable: %s)", dataDir)
		}
		fmt.Fprintf(w, "loadgen: in-process cluster: coordinator %s, %d replica(s)%s\n", h.addr, replicasN, mode)
	case addr == "":
		cfg := service.Config{Addr: "127.0.0.1:0", DataDir: dataDir}
		var srv *service.Server
		var err error
		if dataDir != "" {
			srv, err = service.NewDurable(cfg)
			if err != nil {
				return err
			}
		} else {
			srv = service.New(cfg)
		}
		if err := srv.Listen(); err != nil {
			return err
		}
		go func() { _ = srv.Serve() }()
		cfg.Addr = srv.Addr() // pin the port so restarts keep the address
		sr := &serverRestarter{srv: srv, cfg: cfg}
		restarter = sr
		defer sr.close()
		addr = "http://" + srv.Addr()
		mode := ""
		if dataDir != "" {
			mode = fmt.Sprintf(" (durable: %s)", dataDir)
		}
		fmt.Fprintf(w, "loadgen: in-process server on %s%s\n", srv.Addr(), mode)
	}
	var targets []string
	for _, t := range strings.Split(addr, ",") {
		if t = strings.TrimSuffix(strings.TrimSpace(t), "/"); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no targets in -addr %q", addr)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	sessionIDs := make([]string, len(targets))
	for i, t := range targets {
		id, err := openSession(client, t, dbfSuite, policy)
		if err != nil {
			return fmt.Errorf("opening load session on %s: %w", t, err)
		}
		sessionIDs[i] = id
	}
	tierBase := map[string]float64{}
	var err error
	if dbfSuite {
		// Baseline the tier counters so an external server's prior
		// traffic (and our own session-create solve) doesn't pollute
		// the run's hit rates.
		if tierBase, err = scrapeTiers(client, targets[0]); err != nil {
			return fmt.Errorf("scraping tier baseline: %w", err)
		}
	}

	var stats [kindCount]epStats
	shards := &shardAgg{m: map[string]*epStats{}}
	jobs := make(chan job, 1<<14)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				failed, shard := fire(client, targets[j.target], sessionIDs[j.target], j.kind, j.body)
				d := time.Since(j.sched)
				stats[j.kind].record(d, failed)
				shards.get(shard).record(d, failed)
			}
		}()
	}

	// Open-loop arrival process: exponential gaps over a fixed slot
	// cycle — single adds get two slots of seven (their flavor decided
	// by the -mix diffusion), batches one — so every run at a given
	// seed and mix carries the same request stream.
	rng := rand.New(rand.NewSource(seed))
	gen := &taskGen{rng: rng, mix: mix, pareto: pareto}
	slots := []int{kindTest, kindSessionGet, kindTailAdd, kindWCET, kindTailAdd, kindRepartition, kindBatchAdd}
	if dbfSuite {
		gen.dlRatio = dlRatio
		// Constrained sessions refuse repartition; keep the slot cycle
		// length (and thus the arrival schedule) by substituting an
		// extra admit, the operation the dbf suite is here to measure.
		slots[5] = kindTailAdd
	}
	crashErr := make(chan error, 1)
	if crashes > 0 {
		go func() {
			interval := duration / time.Duration(crashes+1)
			for i := 0; i < crashes; i++ {
				time.Sleep(interval)
				if err := restarter.crashRestart(); err != nil {
					crashErr <- fmt.Errorf("crash/restart %d: %w", i+1, err)
					return
				}
			}
			crashErr <- nil
		}()
	} else {
		crashErr <- nil
	}
	start := time.Now()
	next := start
	sent := 0
	for time.Since(start) < duration {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		j := job{kind: slots[sent%len(slots)], target: sent % len(targets), sched: next}
		switch j.kind {
		case kindTailAdd:
			j.kind, j.body = gen.add()
		case kindBatchAdd:
			j.body = gen.batch()
		}
		jobs <- j
		sent++
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-crashErr; err != nil {
		return err
	}
	if crashes > 0 {
		// The durable claim under test: the load session (and whatever
		// mix of mutations was acknowledged) survives every kill.
		for i, t := range targets {
			resp, err := client.Get(t + "/v1/sessions/" + sessionIDs[i])
			if err != nil {
				return fmt.Errorf("session lookup after %d restart(s): %w", crashes, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("session %s lost after %d restart(s): status %d", sessionIDs[i], crashes, resp.StatusCode)
			}
		}
		fmt.Fprintf(w, "loadgen: killed and recovered %d time(s); session %s intact\n", restarter.recoveries(), strings.Join(sessionIDs, ","))
	}

	bench := "loadgen"
	if dbfSuite {
		bench = "loadgen-dbf"
	}
	suite := benchfmt.Suite{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		Benchtime: duration.String(),
		Note:      note,
	}
	totalErrors := 0
	fmt.Fprintf(w, "loadgen: %d requests in %v (%.0f req/s offered)\n", sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	fmt.Fprintf(w, "%-18s %8s %7s %10s %10s %10s %10s\n", "endpoint", "count", "errors", "mean", "p50", "p99", "p999")
	for k := 0; k < kindCount; k++ {
		st := &stats[k]
		n := len(st.durations)
		if n == 0 {
			continue
		}
		sort.Slice(st.durations, func(i, j int) bool { return st.durations[i] < st.durations[j] })
		var sum time.Duration
		for _, d := range st.durations {
			sum += d
		}
		mean := sum / time.Duration(n)
		p50, p99, p999 := quantile(st.durations, 0.50), quantile(st.durations, 0.99), quantile(st.durations, 0.999)
		totalErrors += st.errors
		fmt.Fprintf(w, "%-18s %8d %7d %10v %10v %10v %10v\n",
			kindNames[k], n, st.errors, mean.Round(time.Microsecond), p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
		suite.Results = append(suite.Results, benchfmt.Result{
			Name:       "Loadgen/" + kindNames[k],
			Iterations: int64(n),
			NsPerOp:    float64(mean.Nanoseconds()),
			Extra: map[string]float64{
				"p50-µs/op":  float64(p50.Microseconds()),
				"p99-µs/op":  float64(p99.Microseconds()),
				"p999-µs/op": float64(p999.Microseconds()),
				"req/s":      float64(n) / elapsed.Seconds(),
				"errors":     float64(st.errors),
			},
		})
	}
	// Shard split: which replica answered (the coordinator stamps X-Shard
	// on every forwarded response) vs requests answered locally. Only
	// meaningful behind a coordinator; a direct target is all "local".
	if labels := shards.labels(); len(labels) > 1 || (len(labels) == 1 && labels[0] != "local") {
		fmt.Fprintf(w, "%-26s %8s %7s %10s %10s\n", "shard", "count", "errors", "p50", "p99")
		for _, label := range labels {
			st := shards.m[label]
			sort.Slice(st.durations, func(i, j int) bool { return st.durations[i] < st.durations[j] })
			n := len(st.durations)
			fmt.Fprintf(w, "%-26s %8d %7d %10v %10v\n", label, n, st.errors,
				quantile(st.durations, 0.50).Round(time.Microsecond), quantile(st.durations, 0.99).Round(time.Microsecond))
			suite.Results = append(suite.Results, benchfmt.Result{
				Name:       "Loadgen/shard/" + label,
				Iterations: int64(n),
				Extra: map[string]float64{
					"p50-µs/op": float64(quantile(st.durations, 0.50).Microseconds()),
					"p99-µs/op": float64(quantile(st.durations, 0.99).Microseconds()),
					"errors":    float64(st.errors),
				},
			})
		}
		forwarded, local := 0, 0
		for _, label := range labels {
			if label == "local" {
				local = len(shards.m[label].durations)
			} else {
				forwarded += len(shards.m[label].durations)
			}
		}
		fmt.Fprintf(w, "loadgen: %d forwarded, %d answered locally\n", forwarded, local)
	}

	if dbfSuite {
		after, err := scrapeTiers(client, targets[0])
		if err != nil {
			return fmt.Errorf("scraping tier counters: %w", err)
		}
		total := 0.0
		for _, path := range tierPaths {
			total += after[path] - tierBase[path]
		}
		res := benchfmt.Result{Name: "Loadgen/tier_hit_rate", Iterations: int64(total), Extra: map[string]float64{}}
		fmt.Fprintf(w, "tiers (%d decisions):", int64(total))
		for _, path := range tierPaths {
			rate := 0.0
			if total > 0 {
				rate = (after[path] - tierBase[path]) / total
			}
			res.Extra[path] = rate
			fmt.Fprintf(w, " %s=%.3f", path, rate)
		}
		fmt.Fprintln(w)
		suite.Results = append(suite.Results, res)
	}
	if out != "" {
		if err := suite.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "loadgen: wrote %d endpoint results to %s\n", len(suite.Results), out)
	}
	if maxErrors >= 0 && totalErrors > maxErrors {
		return fmt.Errorf("%d request errors (max %d)", totalErrors, maxErrors)
	}
	return nil
}

// serverRestarter owns the in-process server so crash mode can swap it
// out underneath the workers: Crash abandons the durability layer with
// no final fsync or snapshot (a process kill), the HTTP side is torn
// down, and a fresh NewDurable recovers from the same directory on the
// same port.
type serverRestarter struct {
	mu   sync.Mutex
	srv  *service.Server
	cfg  service.Config
	recs int
}

func (r *serverRestarter) crashRestart() error {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	srv.Crash()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	next, err := service.NewDurable(r.cfg)
	if err != nil {
		return err
	}
	if err := next.Listen(); err != nil {
		return err
	}
	go func() { _ = next.Serve() }()
	r.mu.Lock()
	r.srv = next
	r.recs++
	r.mu.Unlock()
	return nil
}

func (r *serverRestarter) recoveries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recs
}

func (r *serverRestarter) close() {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// loadBody is the session every run negotiates against: modest
// utilization on a three-speed platform, so incremental admits both
// succeed and (eventually, as the set fills) roll back — the mix covers
// both answer shapes without ever producing a non-200.
const loadBody = `{"tasks":[{"name":"video","wcet":9,"period":30},{"name":"audio","wcet":1,"period":4},{"name":"net","wcet":3,"period":10}],"speeds":[1,1,4],"scheduler":"edf"}`

// loadBodyDBF is the dbf suite's session: the same platform and
// utilizations, but created as a constrained-deadline session with the
// residents' deadlines pulled below their periods, so every subsequent
// admission routes through the tiered DBF pipeline.
const loadBodyDBF = `{"tasks":[{"name":"video","wcet":9,"period":30,"deadline":20},{"name":"audio","wcet":1,"period":4,"deadline":3},{"name":"net","wcet":3,"period":10,"deadline":8}],"speeds":[1,1,4],"scheduler":"edf","deadline_model":"constrained"}`

// tierPaths are the admission-tier counters the dbf suite reports, in
// pipeline order: the O(1) density pre-filter, the approximate demand
// band, and the exact processor-demand fallback.
var tierPaths = []string{"density", "dbf_approx", "dbf_exact"}

// scrapeTiers reads the server's per-tier admission counters from the
// Prometheus endpoint.
func scrapeTiers(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %d %s", resp.StatusCode, raw)
	}
	got := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		for _, path := range tierPaths {
			marker := fmt.Sprintf("partfeas_admissions_total{path=%q} ", path)
			if rest, ok := strings.CutPrefix(line, marker); ok {
				var v float64
				if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
					return nil, fmt.Errorf("parsing %q counter from %q: %w", path, line, err)
				}
				got[path] = v
			}
		}
	}
	if len(got) != len(tierPaths) {
		return nil, fmt.Errorf("/metrics exposes %d of %d tier counters", len(got), len(tierPaths))
	}
	return got, nil
}

func openSession(client *http.Client, addr string, dbfSuite bool, policy string) (string, error) {
	body := loadBody
	if dbfSuite {
		body = loadBodyDBF
	}
	if policy != "" {
		body = strings.TrimSuffix(body, "}") + fmt.Sprintf(`,"placement":%q}`, policy)
	}
	resp, err := client.Post(addr+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("session create: %d %s", resp.StatusCode, body)
	}
	var state struct {
		ID string `json:"id"`
	}
	if err := decodeBody(resp.Body, &state); err != nil {
		return "", err
	}
	return state.ID, nil
}

func decodeBody(r io.Reader, dst any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}

// fire issues one request of the given kind; every kind answers 200 on a
// healthy server (admission rejections are 200 + rolled_back), so any
// other outcome counts as a failure. The shard label is the X-Shard
// header a coordinator stamps on forwarded responses, "local" when the
// target answered itself, "unreachable" on a transport error.
func fire(client *http.Client, addr, sessionID string, kind int, body string) (failed bool, shard string) {
	var resp *http.Response
	var err error
	switch kind {
	case kindTest:
		resp, err = client.Post(addr+"/v1/test", "application/json", strings.NewReader(loadBody))
	case kindSessionGet:
		resp, err = client.Get(addr + "/v1/sessions/" + sessionID)
	case kindTailAdd, kindInteriorAdd:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/tasks", "application/json",
			strings.NewReader(body))
	case kindBatchAdd:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/admit-batch", "application/json",
			strings.NewReader(body))
	case kindWCET:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/wcet", "application/json",
			strings.NewReader(`{"index":0,"wcet":9}`))
	default:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/repartition", "application/json",
			strings.NewReader(`{}`))
	}
	if err != nil {
		return true, "unreachable"
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if shard = resp.Header.Get("X-Shard"); shard == "" {
		shard = "local"
	}
	return resp.StatusCode != http.StatusOK, shard
}

// shardAgg splits outcomes by the shard that answered.
type shardAgg struct {
	mu sync.Mutex
	m  map[string]*epStats
}

func (a *shardAgg) get(label string) *epStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.m[label]
	if st == nil {
		st = &epStats{}
		a.m[label] = st
	}
	return st
}

func (a *shardAgg) labels() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.m))
	for l := range a.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// crasher is the kill/restart hook crash mode drives: the whole server
// in single mode, a random replica in cluster mode.
type crasher interface {
	crashRestart() error
	recoveries() int
}

// clusterHarness owns an in-process cluster: N replicas (durable when
// dataDir is set, each in its own subdirectory) behind a coordinator.
type clusterHarness struct {
	mu       sync.Mutex
	coord    *cluster.Coordinator
	replicas []*service.Server
	cfgs     []service.Config
	addr     string
	rng      *rand.Rand
	recs     int
}

func startCluster(n int, dataDir string, seed int64) (*clusterHarness, error) {
	h := &clusterHarness{rng: rand.New(rand.NewSource(seed + 1))}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := service.Config{Addr: "127.0.0.1:0"}
		var srv *service.Server
		var err error
		if dataDir != "" {
			cfg.DataDir = fmt.Sprintf("%s/replica-%d", dataDir, i)
			srv, err = service.NewDurable(cfg)
			if err != nil {
				return nil, fmt.Errorf("replica %d: %w", i, err)
			}
		} else {
			srv = service.New(cfg)
		}
		if err := srv.Listen(); err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		go func() { _ = srv.Serve() }()
		cfg.Addr = srv.Addr() // pin the port so a restart keeps the address
		h.replicas = append(h.replicas, srv)
		h.cfgs = append(h.cfgs, cfg)
		urls[i] = "http://" + srv.Addr()
	}
	h.coord = cluster.New(cluster.Config{
		Addr:           "127.0.0.1:0",
		Replicas:       urls,
		HealthInterval: 250 * time.Millisecond,
		IDPrefix:       "lg",
	})
	if err := h.coord.Listen(); err != nil {
		return nil, err
	}
	go func() { _ = h.coord.Serve() }()
	h.addr = "http://" + h.coord.Addr()
	return h, nil
}

// crashRestart kills a random replica — no final fsync, no final
// snapshot — and brings it back on the same port from its directory.
func (h *clusterHarness) crashRestart() error {
	h.mu.Lock()
	i := h.rng.Intn(len(h.replicas))
	srv := h.replicas[i]
	cfg := h.cfgs[i]
	h.mu.Unlock()
	srv.Crash()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	next, err := service.NewDurable(cfg)
	if err != nil {
		return fmt.Errorf("replica %d: %w", i, err)
	}
	if err := next.Listen(); err != nil {
		return fmt.Errorf("replica %d: %w", i, err)
	}
	go func() { _ = next.Serve() }()
	h.mu.Lock()
	h.replicas[i] = next
	h.recs++
	h.mu.Unlock()
	return nil
}

func (h *clusterHarness) recoveries() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.recs
}

func (h *clusterHarness) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = h.coord.Shutdown(ctx)
	h.mu.Lock()
	reps := append([]*service.Server(nil), h.replicas...)
	h.mu.Unlock()
	for _, srv := range reps {
		_ = srv.Shutdown(ctx)
	}
}
