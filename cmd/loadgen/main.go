// Command loadgen drives the admission-control server with an open-loop
// Poisson workload and reports per-endpoint latency quantiles.
//
// Open-loop means arrivals are scheduled ahead of time from an
// exponential inter-arrival process at the requested rate, and each
// request's latency is measured from its *scheduled* arrival — so when
// the server falls behind, queueing delay shows up in the tail instead
// of silently throttling the generator (the coordinated-omission trap
// closed-loop harnesses fall into).
//
// The request mix exercises the stateless test endpoint plus one shared
// admission session (reads, incremental admits, batch admits, WCET
// updates and repartition plans); every request in the mix answers 200
// on a healthy server (admission rejections are 200 + rolled_back), so
// any error is a real failure and `-max-errors 0` (the default, used by
// `make loadsmoke`) turns it into a nonzero exit.
//
// Single-task admits come in two flavors reported separately, because
// their server-side cost differs by orders of magnitude: tail adds
// carry tiny utilization and append at the end of the sorted order,
// interior adds carry resident-scale utilization and land mid-order,
// forcing a suffix replay. `-mix` sets the interior fraction of add
// traffic (spread deterministically by error diffusion, so a given
// mix always produces the same add sequence), and `-pareto` switches
// WCETs to a heavy-tailed Pareto draw with the paired period scaled to
// hold utilization at the flavor's target.
//
// `-suite dbf` switches the run to a constrained-deadline session:
// generated tasks carry relative deadlines drawn with D/T uniform in
// [`-deadline-ratio`, 1], admissions route through the tiered DBF
// pipeline, and the summary reports each tier's hit rate (density /
// dbf_approx / dbf_exact, scraped from /metrics) alongside the latency
// quantiles. Repartition is not part of the dbf mix — constrained
// sessions refuse it — so that slot carries an extra tail admit.
//
// With `-data-dir` the in-process server runs durably (write-ahead log
// + snapshots), and `-crashes N` kills it — no final fsync, no final
// snapshot, exactly a process kill — and restarts it from the same
// directory N times while the load keeps arriving. Requests caught in a
// blackout window count as errors (so `-max-errors`, unless set
// explicitly, is not enforced in crash mode); after the last restart the
// run verifies the load session survived recovery and reports the
// restart count.
//
// Usage:
//
//	loadgen                                  # in-process server, 200 req/s for 2s
//	loadgen -data-dir /tmp/pf -crashes 3     # kill/restart under load, thrice
//	loadgen -addr http://127.0.0.1:8377 -rate 1000 -duration 10s -clients 32
//	loadgen -mix 0.9 -pareto 1.5             # interior-heavy, heavy-tailed WCETs
//	loadgen -suite dbf -deadline-ratio 0.4   # constrained deadlines, tiered admission
//	loadgen -policy best_fit                 # session under a non-default placement policy
//	loadgen -o results/LOADGEN.json          # record a benchfmt suite
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"partfeas/internal/benchfmt"
	"partfeas/internal/online"
	"partfeas/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target base URL; empty starts an in-process server")
		rate      = flag.Float64("rate", 200, "mean arrival rate, requests/second (Poisson)")
		duration  = flag.Duration("duration", 2*time.Second, "generation window")
		clients   = flag.Int("clients", 8, "concurrent worker connections")
		seed      = flag.Int64("seed", 1, "arrival-process seed")
		mix       = flag.Float64("mix", 0.5, "interior fraction of single-task admits, in [0,1]")
		pareto    = flag.Float64("pareto", 0, "Pareto tail index for WCET draws; 0 keeps WCETs fixed")
		suite     = flag.String("suite", "implicit", `workload suite: "implicit" (D = T) or "dbf" (constrained deadlines, tiered admission)`)
		policy    = flag.String("policy", "", "session placement policy ("+online.PolicyNames()+`; default "" lets the server pick first_fit_sorted)`)
		dlRatio   = flag.Float64("deadline-ratio", 0.5, "dbf suite: lower bound of the uniform D/T draw, in (0,1]")
		out       = flag.String("o", "", "write per-endpoint results as a benchfmt JSON suite")
		note      = flag.String("note", "", "free-form label recorded in the suite document")
		maxErrors = flag.Int("max-errors", 0, "exit nonzero when more requests than this fail")
		dataDir   = flag.String("data-dir", "", "run the in-process server durably from this directory (WAL + snapshots)")
		crashes   = flag.Int("crashes", 0, "with -data-dir: kill and restart the in-process server this many times during the run")
	)
	flag.Parse()
	if *policy != "" {
		// Reject unknown policies before any load is generated: a typo
		// should die at flag parsing, not as a mid-run session 400.
		if _, err := online.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -policy:", err)
			os.Exit(2)
		}
	}
	if *crashes > 0 {
		// Blackout-window failures are the point of crash mode, so the
		// error budget only applies when the caller set one explicitly.
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "max-errors" })
		if !explicit {
			*maxErrors = -1
		}
	}
	if err := run(os.Stdout, *addr, *rate, *duration, *clients, *seed, *mix, *pareto, *suite, *policy, *dlRatio, *out, *note, *maxErrors, *dataDir, *crashes); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// job is one scheduled arrival: the endpoint to hit, the request body
// for the admit kinds (generated up front in the single-threaded arrival
// loop so the seeded rng stays race-free), and the instant the open-loop
// process emitted it.
type job struct {
	kind  int
	body  string
	sched time.Time
}

// endpoint kinds, reported separately so the orders-of-magnitude cost
// gap between tail and interior admits shows up in the summary instead
// of averaging away.
const (
	kindTest        = iota // POST /v1/test (stateless, pool-cached)
	kindSessionGet         // GET /v1/sessions/{id}
	kindTailAdd            // POST /v1/sessions/{id}/tasks, tiny utilization (sorted tail)
	kindInteriorAdd        // POST /v1/sessions/{id}/tasks, resident-scale utilization (suffix replay)
	kindBatchAdd           // POST /v1/sessions/{id}/admit-batch, mixed best-effort batch
	kindWCET               // POST /v1/sessions/{id}/wcet
	kindRepartition        // POST /v1/sessions/{id}/repartition (plan only)
	kindCount
)

var kindNames = [kindCount]string{"test", "session_get", "task_add_tail", "task_add_interior", "task_add_batch", "wcet", "repartition"}

// Utilization targets for generated tasks. Tail adds sit far below the
// session residents (u 0.25–0.3) so they append at the sorted tail;
// interior adds land inside the resident range so every one forces a
// suffix replay. The gap between the bands keeps a run's adds from
// drifting across flavors as the set fills.
const (
	tailU       = 0.02
	interiorULo = 0.20
	interiorUHi = 0.28
	batchSize   = 4
	maxParetoWC = 1 << 20
)

// taskGen produces admit request bodies from the seeded rng. The
// tail/interior decision uses error diffusion rather than a coin flip:
// the interior fraction of the first n adds is always within one task of
// n*mix, so two runs at the same mix carry the same add sequence even
// though WCET draws consume rng state.
type taskGen struct {
	rng    *rand.Rand
	mix    float64
	pareto float64
	// dlRatio > 0 switches generated tasks to constrained deadlines:
	// D/T is drawn uniform in [dlRatio, 1] and clamped to D ≥ C. Zero
	// keeps deadlines implicit (no deadline field on the wire).
	dlRatio float64
	acc     float64
}

// taskJSON renders one task object, with the deadline field only when
// the generator runs in constrained mode.
func (g *taskGen) taskJSON(w, p int64) string {
	if g.dlRatio <= 0 {
		return fmt.Sprintf(`{"wcet":%d,"period":%d}`, w, p)
	}
	d := int64(float64(p) * (g.dlRatio + (1-g.dlRatio)*g.rng.Float64()))
	if d < w {
		d = w
	}
	if d > p {
		d = p
	}
	return fmt.Sprintf(`{"wcet":%d,"period":%d,"deadline":%d}`, w, p, d)
}

// wcet draws one WCET: fixed when -pareto is off, otherwise
// Pareto(xm=1, alpha) via inverse-CDF, clamped so the paired period
// stays well inside int64. The caller scales the period to hold
// utilization at the flavor's target, so heavy tail draws stress the
// magnitude arithmetic without moving the task's sorted position.
func (g *taskGen) wcet() int64 {
	if g.pareto <= 0 {
		return 3
	}
	x := math.Pow(1-g.rng.Float64(), -1/g.pareto)
	if x > maxParetoWC {
		x = maxParetoWC
	}
	return int64(math.Ceil(x))
}

// periodFor pairs a period with w so the task's utilization is u.
func periodFor(w int64, u float64) int64 {
	p := int64(math.Ceil(float64(w) / u))
	if p < w {
		p = w
	}
	return p
}

// add emits one single-task admit: the flavor kind and its body.
func (g *taskGen) add() (int, string) {
	kind, u := kindTailAdd, tailU
	if g.acc += g.mix; g.acc >= 1 {
		g.acc--
		kind = kindInteriorAdd
		u = interiorULo + (interiorUHi-interiorULo)*g.rng.Float64()
	}
	w := g.wcet()
	return kind, `{"task":` + g.taskJSON(w, periodFor(w, u)) + `}`
}

// batch emits one best-effort admit-batch body alternating tail and
// interior flavors, so a single call exercises the merged replay over
// scattered insertion points.
func (g *taskGen) batch() string {
	var sb strings.Builder
	sb.WriteString(`{"tasks":[`)
	for i := 0; i < batchSize; i++ {
		u := tailU
		if i%2 == 1 {
			u = interiorULo + (interiorUHi-interiorULo)*g.rng.Float64()
		}
		w := g.wcet()
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(g.taskJSON(w, periodFor(w, u)))
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// epStats accumulates one endpoint's outcomes; quantiles are computed
// exactly from the recorded samples at report time.
type epStats struct {
	mu        sync.Mutex
	durations []time.Duration
	errors    int
}

func (st *epStats) record(d time.Duration, failed bool) {
	st.mu.Lock()
	st.durations = append(st.durations, d)
	if failed {
		st.errors++
	}
	st.mu.Unlock()
}

// quantile returns the q-quantile of the sorted sample set.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(w io.Writer, addr string, rate float64, duration time.Duration, clients int, seed int64, mix, pareto float64, suiteName, policy string, dlRatio float64, out, note string, maxErrors int, dataDir string, crashes int) error {
	if !(rate > 0) {
		return fmt.Errorf("rate %v must be positive", rate)
	}
	if mix < 0 || mix > 1 || math.IsNaN(mix) {
		return fmt.Errorf("mix %v must be in [0,1]", mix)
	}
	if pareto < 0 || math.IsNaN(pareto) {
		return fmt.Errorf("pareto %v must be ≥ 0", pareto)
	}
	if suiteName != "implicit" && suiteName != "dbf" {
		return fmt.Errorf("suite %q must be \"implicit\" or \"dbf\"", suiteName)
	}
	dbfSuite := suiteName == "dbf"
	if policy != "" {
		if _, err := online.ParsePolicy(policy); err != nil {
			return err
		}
	}
	if dbfSuite && !(dlRatio > 0 && dlRatio <= 1) {
		return fmt.Errorf("deadline-ratio %v must be in (0,1]", dlRatio)
	}
	if clients < 1 {
		clients = 1
	}
	if crashes > 0 && (dataDir == "" || addr != "") {
		return fmt.Errorf("-crashes requires -data-dir and an in-process server (empty -addr)")
	}
	var restarter *serverRestarter
	if addr == "" {
		cfg := service.Config{Addr: "127.0.0.1:0", DataDir: dataDir}
		var srv *service.Server
		var err error
		if dataDir != "" {
			srv, err = service.NewDurable(cfg)
			if err != nil {
				return err
			}
		} else {
			srv = service.New(cfg)
		}
		if err := srv.Listen(); err != nil {
			return err
		}
		go func() { _ = srv.Serve() }()
		cfg.Addr = srv.Addr() // pin the port so restarts keep the address
		restarter = &serverRestarter{srv: srv, cfg: cfg}
		defer restarter.close()
		addr = "http://" + srv.Addr()
		mode := ""
		if dataDir != "" {
			mode = fmt.Sprintf(" (durable: %s)", dataDir)
		}
		fmt.Fprintf(w, "loadgen: in-process server on %s%s\n", srv.Addr(), mode)
	}
	addr = strings.TrimSuffix(addr, "/")

	client := &http.Client{Timeout: 30 * time.Second}
	sessionID, err := openSession(client, addr, dbfSuite, policy)
	if err != nil {
		return fmt.Errorf("opening load session: %w", err)
	}
	tierBase := map[string]float64{}
	if dbfSuite {
		// Baseline the tier counters so an external server's prior
		// traffic (and our own session-create solve) doesn't pollute
		// the run's hit rates.
		if tierBase, err = scrapeTiers(client, addr); err != nil {
			return fmt.Errorf("scraping tier baseline: %w", err)
		}
	}

	var stats [kindCount]epStats
	jobs := make(chan job, 1<<14)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				failed := fire(client, addr, sessionID, j.kind, j.body)
				stats[j.kind].record(time.Since(j.sched), failed)
			}
		}()
	}

	// Open-loop arrival process: exponential gaps over a fixed slot
	// cycle — single adds get two slots of seven (their flavor decided
	// by the -mix diffusion), batches one — so every run at a given
	// seed and mix carries the same request stream.
	rng := rand.New(rand.NewSource(seed))
	gen := &taskGen{rng: rng, mix: mix, pareto: pareto}
	slots := []int{kindTest, kindSessionGet, kindTailAdd, kindWCET, kindTailAdd, kindRepartition, kindBatchAdd}
	if dbfSuite {
		gen.dlRatio = dlRatio
		// Constrained sessions refuse repartition; keep the slot cycle
		// length (and thus the arrival schedule) by substituting an
		// extra admit, the operation the dbf suite is here to measure.
		slots[5] = kindTailAdd
	}
	crashErr := make(chan error, 1)
	if crashes > 0 {
		go func() {
			interval := duration / time.Duration(crashes+1)
			for i := 0; i < crashes; i++ {
				time.Sleep(interval)
				if err := restarter.crashRestart(); err != nil {
					crashErr <- fmt.Errorf("crash/restart %d: %w", i+1, err)
					return
				}
			}
			crashErr <- nil
		}()
	} else {
		crashErr <- nil
	}
	start := time.Now()
	next := start
	sent := 0
	for time.Since(start) < duration {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		j := job{kind: slots[sent%len(slots)], sched: next}
		switch j.kind {
		case kindTailAdd:
			j.kind, j.body = gen.add()
		case kindBatchAdd:
			j.body = gen.batch()
		}
		jobs <- j
		sent++
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if err := <-crashErr; err != nil {
		return err
	}
	if crashes > 0 {
		// The durable claim under test: the load session (and whatever
		// mix of mutations was acknowledged) survives every kill.
		resp, err := client.Get(addr + "/v1/sessions/" + sessionID)
		if err != nil {
			return fmt.Errorf("session lookup after %d restart(s): %w", crashes, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("session %s lost after %d restart(s): status %d", sessionID, crashes, resp.StatusCode)
		}
		fmt.Fprintf(w, "loadgen: server killed and recovered %d time(s); session %s intact\n", restarter.recoveries(), sessionID)
	}

	bench := "loadgen"
	if dbfSuite {
		bench = "loadgen-dbf"
	}
	suite := benchfmt.Suite{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     bench,
		Benchtime: duration.String(),
		Note:      note,
	}
	totalErrors := 0
	fmt.Fprintf(w, "loadgen: %d requests in %v (%.0f req/s offered)\n", sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	fmt.Fprintf(w, "%-18s %8s %7s %10s %10s %10s %10s\n", "endpoint", "count", "errors", "mean", "p50", "p99", "p999")
	for k := 0; k < kindCount; k++ {
		st := &stats[k]
		n := len(st.durations)
		if n == 0 {
			continue
		}
		sort.Slice(st.durations, func(i, j int) bool { return st.durations[i] < st.durations[j] })
		var sum time.Duration
		for _, d := range st.durations {
			sum += d
		}
		mean := sum / time.Duration(n)
		p50, p99, p999 := quantile(st.durations, 0.50), quantile(st.durations, 0.99), quantile(st.durations, 0.999)
		totalErrors += st.errors
		fmt.Fprintf(w, "%-18s %8d %7d %10v %10v %10v %10v\n",
			kindNames[k], n, st.errors, mean.Round(time.Microsecond), p50.Round(time.Microsecond), p99.Round(time.Microsecond), p999.Round(time.Microsecond))
		suite.Results = append(suite.Results, benchfmt.Result{
			Name:       "Loadgen/" + kindNames[k],
			Iterations: int64(n),
			NsPerOp:    float64(mean.Nanoseconds()),
			Extra: map[string]float64{
				"p50-µs/op":  float64(p50.Microseconds()),
				"p99-µs/op":  float64(p99.Microseconds()),
				"p999-µs/op": float64(p999.Microseconds()),
				"req/s":      float64(n) / elapsed.Seconds(),
				"errors":     float64(st.errors),
			},
		})
	}
	if dbfSuite {
		after, err := scrapeTiers(client, addr)
		if err != nil {
			return fmt.Errorf("scraping tier counters: %w", err)
		}
		total := 0.0
		for _, path := range tierPaths {
			total += after[path] - tierBase[path]
		}
		res := benchfmt.Result{Name: "Loadgen/tier_hit_rate", Iterations: int64(total), Extra: map[string]float64{}}
		fmt.Fprintf(w, "tiers (%d decisions):", int64(total))
		for _, path := range tierPaths {
			rate := 0.0
			if total > 0 {
				rate = (after[path] - tierBase[path]) / total
			}
			res.Extra[path] = rate
			fmt.Fprintf(w, " %s=%.3f", path, rate)
		}
		fmt.Fprintln(w)
		suite.Results = append(suite.Results, res)
	}
	if out != "" {
		if err := suite.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "loadgen: wrote %d endpoint results to %s\n", len(suite.Results), out)
	}
	if maxErrors >= 0 && totalErrors > maxErrors {
		return fmt.Errorf("%d request errors (max %d)", totalErrors, maxErrors)
	}
	return nil
}

// serverRestarter owns the in-process server so crash mode can swap it
// out underneath the workers: Crash abandons the durability layer with
// no final fsync or snapshot (a process kill), the HTTP side is torn
// down, and a fresh NewDurable recovers from the same directory on the
// same port.
type serverRestarter struct {
	mu   sync.Mutex
	srv  *service.Server
	cfg  service.Config
	recs int
}

func (r *serverRestarter) crashRestart() error {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	srv.Crash()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	next, err := service.NewDurable(r.cfg)
	if err != nil {
		return err
	}
	if err := next.Listen(); err != nil {
		return err
	}
	go func() { _ = next.Serve() }()
	r.mu.Lock()
	r.srv = next
	r.recs++
	r.mu.Unlock()
	return nil
}

func (r *serverRestarter) recoveries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recs
}

func (r *serverRestarter) close() {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// loadBody is the session every run negotiates against: modest
// utilization on a three-speed platform, so incremental admits both
// succeed and (eventually, as the set fills) roll back — the mix covers
// both answer shapes without ever producing a non-200.
const loadBody = `{"tasks":[{"name":"video","wcet":9,"period":30},{"name":"audio","wcet":1,"period":4},{"name":"net","wcet":3,"period":10}],"speeds":[1,1,4],"scheduler":"edf"}`

// loadBodyDBF is the dbf suite's session: the same platform and
// utilizations, but created as a constrained-deadline session with the
// residents' deadlines pulled below their periods, so every subsequent
// admission routes through the tiered DBF pipeline.
const loadBodyDBF = `{"tasks":[{"name":"video","wcet":9,"period":30,"deadline":20},{"name":"audio","wcet":1,"period":4,"deadline":3},{"name":"net","wcet":3,"period":10,"deadline":8}],"speeds":[1,1,4],"scheduler":"edf","deadline_model":"constrained"}`

// tierPaths are the admission-tier counters the dbf suite reports, in
// pipeline order: the O(1) density pre-filter, the approximate demand
// band, and the exact processor-demand fallback.
var tierPaths = []string{"density", "dbf_approx", "dbf_exact"}

// scrapeTiers reads the server's per-tier admission counters from the
// Prometheus endpoint.
func scrapeTiers(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %d %s", resp.StatusCode, raw)
	}
	got := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		for _, path := range tierPaths {
			marker := fmt.Sprintf("partfeas_admissions_total{path=%q} ", path)
			if rest, ok := strings.CutPrefix(line, marker); ok {
				var v float64
				if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
					return nil, fmt.Errorf("parsing %q counter from %q: %w", path, line, err)
				}
				got[path] = v
			}
		}
	}
	if len(got) != len(tierPaths) {
		return nil, fmt.Errorf("/metrics exposes %d of %d tier counters", len(got), len(tierPaths))
	}
	return got, nil
}

func openSession(client *http.Client, addr string, dbfSuite bool, policy string) (string, error) {
	body := loadBody
	if dbfSuite {
		body = loadBodyDBF
	}
	if policy != "" {
		body = strings.TrimSuffix(body, "}") + fmt.Sprintf(`,"placement":%q}`, policy)
	}
	resp, err := client.Post(addr+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("session create: %d %s", resp.StatusCode, body)
	}
	var state struct {
		ID string `json:"id"`
	}
	if err := decodeBody(resp.Body, &state); err != nil {
		return "", err
	}
	return state.ID, nil
}

func decodeBody(r io.Reader, dst any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}

// fire issues one request of the given kind; every kind answers 200 on a
// healthy server (admission rejections are 200 + rolled_back), so any
// other outcome counts as a failure.
func fire(client *http.Client, addr, sessionID string, kind int, body string) (failed bool) {
	var resp *http.Response
	var err error
	switch kind {
	case kindTest:
		resp, err = client.Post(addr+"/v1/test", "application/json", strings.NewReader(loadBody))
	case kindSessionGet:
		resp, err = client.Get(addr + "/v1/sessions/" + sessionID)
	case kindTailAdd, kindInteriorAdd:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/tasks", "application/json",
			strings.NewReader(body))
	case kindBatchAdd:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/admit-batch", "application/json",
			strings.NewReader(body))
	case kindWCET:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/wcet", "application/json",
			strings.NewReader(`{"index":0,"wcet":9}`))
	default:
		resp, err = client.Post(addr+"/v1/sessions/"+sessionID+"/repartition", "application/json",
			strings.NewReader(`{}`))
	}
	if err != nil {
		return true
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode != http.StatusOK
}
