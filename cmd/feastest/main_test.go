package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partfeas"
)

func writeInstance(t *testing.T, tasksJSON, machinesJSON string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	tp := filepath.Join(dir, "tasks.json")
	mp := filepath.Join(dir, "machines.json")
	if err := os.WriteFile(tp, []byte(tasksJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, []byte(machinesJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return tp, mp
}

const goodTasks = `{"tasks":[{"name":"a","wcet":1,"period":4},{"name":"b","wcet":1,"period":2}]}`
const goodMachines = `{"machines":[{"name":"m0","speed":1}]}`

func TestParseScheduler(t *testing.T) {
	if s, err := parseScheduler("edf"); err != nil || s != partfeas.EDF {
		t.Errorf("edf: %v %v", s, err)
	}
	if s, err := parseScheduler("RMS"); err != nil || s != partfeas.RMS {
		t.Errorf("RMS: %v %v", s, err)
	}
	if s, err := parseScheduler("rm"); err != nil || s != partfeas.RMS {
		t.Errorf("rm: %v %v", s, err)
	}
	if _, err := parseScheduler("bogus"); err == nil {
		t.Error("bogus accepted")
	}
}

func TestParseTheorem(t *testing.T) {
	cases := map[string]partfeas.Theorem{
		"I.1": partfeas.TheoremI1, "i.2": partfeas.TheoremI2,
		"3": partfeas.TheoremI3, "I.4": partfeas.TheoremI4,
	}
	for in, want := range cases {
		got, err := parseTheorem(in)
		if err != nil || got != want {
			t.Errorf("parseTheorem(%q) = %v (%v), want %v", in, got, err, want)
		}
	}
	if _, err := parseTheorem("I.5"); err == nil {
		t.Error("I.5 accepted")
	}
}

func TestRunAccept(t *testing.T) {
	tp, mp := writeInstance(t, goodTasks, goodMachines)
	if err := run(tp, mp, "edf", 1, "", true); err != nil {
		t.Errorf("accepting run failed: %v", err)
	}
	if err := run(tp, mp, "", 0, "I.1", false); err != nil {
		t.Errorf("theorem run failed: %v", err)
	}
}

func TestRunReject(t *testing.T) {
	over := `{"tasks":[{"wcet":3,"period":4},{"wcet":3,"period":4}]}`
	tp, mp := writeInstance(t, over, goodMachines)
	err := run(tp, mp, "edf", 1, "", false)
	if err != errRejected {
		t.Errorf("err = %v, want errRejected", err)
	}
}

func TestRunErrors(t *testing.T) {
	tp, mp := writeInstance(t, goodTasks, goodMachines)
	if err := run("", mp, "edf", 1, "", false); err == nil {
		t.Error("missing tasks path accepted")
	}
	if err := run(tp, mp, "bogus", 1, "", false); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := run(tp, mp, "edf", 1, "I.9", false); err == nil {
		t.Error("bad theorem accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.json"), mp, "edf", 1, "", false); err == nil {
		t.Error("missing file accepted")
	}
	bad, mp2 := writeInstance(t, `{"tasks":[]}`, goodMachines)
	if err := run(bad, mp2, "edf", 1, "", false); err == nil {
		t.Error("empty task set accepted")
	}
}

func TestRunRejectsInvalidAlpha(t *testing.T) {
	tp, mp := writeInstance(t, goodTasks, goodMachines)
	for _, alpha := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := run(tp, mp, "edf", alpha, "", false)
		if err == nil {
			t.Errorf("alpha=%v accepted", alpha)
			continue
		}
		if !strings.Contains(err.Error(), "-alpha") {
			t.Errorf("alpha=%v: error %q does not name the flag", alpha, err)
		}
	}
	// -theorem overrides -alpha, so a theorem run must not trip the check.
	if err := run(tp, mp, "", 0, "I.1", false); err != nil {
		t.Errorf("theorem run with zero alpha failed: %v", err)
	}
}

func TestRunRejectsMalformedInputs(t *testing.T) {
	cases := []struct {
		name     string
		tasks    string
		machines string
		wantSub  string // expected substring naming the offending field
	}{
		{"zero wcet", `{"tasks":[{"name":"a","wcet":0,"period":4}]}`, goodMachines, "WCET"},
		{"negative wcet", `{"tasks":[{"name":"a","wcet":-3,"period":4}]}`, goodMachines, "WCET"},
		{"zero period", `{"tasks":[{"name":"a","wcet":1,"period":0}]}`, goodMachines, "period"},
		{"negative period", `{"tasks":[{"name":"a","wcet":1,"period":-4}]}`, goodMachines, "period"},
		{"zero speed", goodTasks, `{"machines":[{"name":"m0","speed":0}]}`, "speed"},
		{"negative speed", goodTasks, `{"machines":[{"name":"m0","speed":-1}]}`, "speed"},
		{"empty machines", goodTasks, `{"machines":[]}`, "empty"},
		{"unknown task field", `{"tasks":[{"name":"a","wcet":1,"period":4,"bogus":1}]}`, goodMachines, "bogus"},
		{"truncated JSON", `{"tasks":[{"name":"a"`, goodMachines, "decoding"},
		{"not JSON", `hello`, goodMachines, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp, mp := writeInstance(t, tc.tasks, tc.machines)
			err := run(tp, mp, "edf", 1, "", false)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
