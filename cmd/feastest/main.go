// Command feastest runs the paper's partitioned feasibility test on a
// task set and platform read from JSON files.
//
// Usage:
//
//	feastest -tasks tasks.json -machines machines.json -scheduler edf -alpha 2
//	feastest -tasks tasks.json -machines machines.json -theorem I.3
//
// The exit status is 0 when the test accepts and 2 when it rejects, so
// the tool composes in scripts. With -analyze it additionally prints both
// adversary scalings and the minimal accepting augmentation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"partfeas"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func main() {
	var (
		tasksPath    = flag.String("tasks", "", "path to task-set JSON (required)")
		machinesPath = flag.String("machines", "", "path to platform JSON (required)")
		scheduler    = flag.String("scheduler", "edf", "per-machine policy: edf or rms")
		alpha        = flag.Float64("alpha", 1, "speed augmentation α > 0")
		theorem      = flag.String("theorem", "", "run at a theorem's proved α: I.1, I.2, I.3 or I.4 (overrides -scheduler/-alpha)")
		analyze      = flag.Bool("analyze", false, "also print adversary scalings and minimal accepting α")
	)
	flag.Parse()
	if err := run(*tasksPath, *machinesPath, *scheduler, *alpha, *theorem, *analyze); err != nil {
		fmt.Fprintln(os.Stderr, "feastest:", err)
		if err == errRejected {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

var errRejected = fmt.Errorf("task set rejected")

func run(tasksPath, machinesPath, scheduler string, alpha float64, theorem string, analyze bool) error {
	if tasksPath == "" || machinesPath == "" {
		return fmt.Errorf("-tasks and -machines are required")
	}
	if theorem == "" && (math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 0) {
		return fmt.Errorf("-alpha %v must be a positive finite number", alpha)
	}
	ts, err := readTasks(tasksPath)
	if err != nil {
		return err
	}
	plat, err := readPlatform(machinesPath)
	if err != nil {
		return err
	}

	var rep partfeas.Report
	if theorem != "" {
		thm, err := parseTheorem(theorem)
		if err != nil {
			return err
		}
		rep, err = partfeas.TestTheorem(ts, plat, thm)
		if err != nil {
			return err
		}
		fmt.Printf("theorem %v: scheduler=%v adversary=%v α=%.4f\n", thm, thm.Scheduler(), thm.Adversary(), thm.Alpha())
	} else {
		sch, err := parseScheduler(scheduler)
		if err != nil {
			return err
		}
		rep, err = partfeas.Test(ts, plat, sch, alpha)
		if err != nil {
			return err
		}
		fmt.Printf("test: scheduler=%v α=%.4f\n", sch, alpha)
	}

	fmt.Printf("tasks=%d machines=%d total-utilization=%.4f total-speed=%.4f\n",
		len(ts), len(plat), ts.TotalUtilization(), plat.TotalSpeed())

	if rep.Accepted {
		fmt.Println("result: ACCEPTED")
		printPartition(ts, plat, rep)
	} else {
		fmt.Println("result: REJECTED")
		if ft := rep.Partition.FailedTask; ft >= 0 {
			fmt.Printf("failing task (τ_n): %v (utilization %.4f)\n", ts[ft], ts[ft].Utilization())
		}
	}

	if analyze {
		if err := printAnalysis(ts, plat); err != nil {
			return err
		}
	}
	if !rep.Accepted {
		return errRejected
	}
	return nil
}

func printPartition(ts partfeas.TaskSet, plat partfeas.Platform, rep partfeas.Report) {
	fmt.Println("witness partition:")
	for j := range plat {
		var names []string
		for i, mj := range rep.Partition.Assignment {
			if mj == j {
				names = append(names, ts[i].Name)
			}
		}
		fmt.Printf("  %s (speed %.3g, α-load %.4f/%.4f): %s\n",
			plat[j].Name, plat[j].Speed, rep.Partition.Loads[j], rep.Alpha*plat[j].Speed,
			strings.Join(names, ", "))
	}
}

func printAnalysis(ts partfeas.TaskSet, plat partfeas.Platform) error {
	a, err := partfeas.Analyze(ts, plat)
	if err != nil {
		return err
	}
	fmt.Println("analysis:")
	if a.SigmaPartitionedExact {
		fmt.Printf("  σ_part (exact partitioned adversary) = %.4f\n", a.SigmaPartitioned)
	} else {
		fmt.Printf("  σ_part ≤ %.4f (exact search degraded to its incumbent bound; not proved optimal)\n", a.SigmaPartitioned)
	}
	fmt.Printf("  σ_LP   (migratory LP adversary)       = %.4f\n", a.SigmaMigratory)
	fmt.Printf("  minimal accepting α: EDF = %.4f, RMS = %.4f\n", a.MinAlphaEDF, a.MinAlphaRMS)
	for i, thm := range partfeas.Theorems {
		verdict := "reject"
		if a.Reports[i].Accepted {
			verdict = "accept"
		}
		fmt.Printf("  theorem %v (α=%.4f): %s\n", thm, thm.Alpha(), verdict)
	}
	return nil
}

func parseScheduler(s string) (partfeas.Scheduler, error) {
	switch strings.ToLower(s) {
	case "edf":
		return partfeas.EDF, nil
	case "rms", "rm":
		return partfeas.RMS, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (want edf or rms)", s)
	}
}

func parseTheorem(s string) (partfeas.Theorem, error) {
	switch strings.ToUpper(strings.TrimPrefix(strings.ToUpper(s), "THEOREM")) {
	case "I.1", "1":
		return partfeas.TheoremI1, nil
	case "I.2", "2":
		return partfeas.TheoremI2, nil
	case "I.3", "3":
		return partfeas.TheoremI3, nil
	case "I.4", "4":
		return partfeas.TheoremI4, nil
	default:
		return 0, fmt.Errorf("unknown theorem %q (want I.1, I.2, I.3 or I.4)", s)
	}
}

func readTasks(path string) (task.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return task.ReadJSON(f)
}

func readPlatform(path string) (machine.Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return machine.ReadJSON(f)
}
