package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func TestRunWritesValidFiles(t *testing.T) {
	dir := t.TempDir()
	tp := filepath.Join(dir, "tasks.json")
	mp := filepath.Join(dir, "machines.json")
	for _, tc := range []struct {
		utils, speeds, periods string
	}{
		{"uunifast", "uniform", "loguniform"},
		{"bimodal", "geometric", "divisors"},
		{"exponential", "big.LITTLE", "divisors"},
		{"uunifast", "identical", "loguniform"},
	} {
		if err := run(8, 3, 0.7, tc.utils, tc.speeds, tc.periods, 7, tp, mp); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		tf, err := os.Open(tp)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := task.ReadJSON(tf)
		tf.Close()
		if err != nil || len(ts) != 8 {
			t.Fatalf("%+v: tasks invalid: %v (%v)", tc, len(ts), err)
		}
		mf, err := os.Open(mp)
		if err != nil {
			t.Fatal(err)
		}
		plat, err := machine.ReadJSON(mf)
		mf.Close()
		if err != nil || len(plat) != 3 {
			t.Fatalf("%+v: machines invalid: %v (%v)", tc, len(plat), err)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for i := 0; i < 2; i++ {
		if err := run(5, 2, 0.6, "uunifast", "uniform", "divisors", 99,
			filepath.Join(dir, "t"+string(rune('0'+i))+".json"),
			filepath.Join(dir, "m"+string(rune('0'+i))+".json")); err != nil {
			t.Fatal(err)
		}
	}
	if read("t0.json") != read("t1.json") || read("m0.json") != read("m1.json") {
		t.Error("same seed produced different workloads")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	dir := t.TempDir()
	tp := filepath.Join(dir, "t.json")
	mp := filepath.Join(dir, "m.json")
	if err := run(5, 2, 0.6, "nope", "uniform", "divisors", 1, tp, mp); err == nil {
		t.Error("bad utils family accepted")
	}
	if err := run(5, 2, 0.6, "uunifast", "nope", "divisors", 1, tp, mp); err == nil {
		t.Error("bad speed family accepted")
	}
	if err := run(5, 2, 0.6, "uunifast", "uniform", "nope", 1, tp, mp); err == nil {
		t.Error("bad period family accepted")
	}
	if err := run(5, 2, 0.6, "uunifast", "uniform", "divisors", 1, "/nonexistent/dir/t.json", mp); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunRejectsInvalidNumericFlags(t *testing.T) {
	dir := t.TempDir()
	tp := filepath.Join(dir, "t.json")
	mp := filepath.Join(dir, "m.json")
	cases := []struct {
		name    string
		n, m    int
		load    float64
		tasks   string
		wantSub string // expected substring naming the offending flag
	}{
		{"zero tasks", 0, 2, 0.6, tp, "-n"},
		{"negative tasks", -4, 2, 0.6, tp, "-n"},
		{"zero machines", 5, 0, 0.6, tp, "-m"},
		{"negative machines", 5, -1, 0.6, tp, "-m"},
		{"zero load", 5, 2, 0, tp, "-load"},
		{"negative load", 5, 2, -0.5, tp, "-load"},
		{"NaN load", 5, 2, math.NaN(), tp, "-load"},
		{"Inf load", 5, 2, math.Inf(1), tp, "-load"},
		{"empty tasks path", 5, 2, 0.6, "", "-tasks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.n, tc.m, tc.load, "uunifast", "uniform", "divisors", 1, tc.tasks, mp)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
