// Command genwork emits random task-set and platform JSON files from the
// workload families the experiment suite uses, for feeding feastest and
// simulate.
//
// Usage:
//
//	genwork -n 12 -m 4 -load 0.8 -utils uunifast -speeds big.LITTLE \
//	        -tasks tasks.json -machines machines.json -seed 7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"partfeas/internal/machine"
	"partfeas/internal/task"
	"partfeas/internal/workload"
)

func main() {
	var (
		n            = flag.Int("n", 12, "number of tasks")
		m            = flag.Int("m", 4, "number of machines")
		load         = flag.Float64("load", 0.8, "target U/Σs for the uunifast family")
		utils        = flag.String("utils", "uunifast", "utilization family: uunifast, bimodal, exponential")
		speeds       = flag.String("speeds", "uniform", "speed family: uniform, geometric, big.LITTLE, identical")
		periods      = flag.String("periods", "loguniform", "period family: loguniform, divisors")
		seed         = flag.Uint64("seed", 1, "RNG seed")
		tasksPath    = flag.String("tasks", "tasks.json", "output task-set JSON path")
		machinesPath = flag.String("machines", "machines.json", "output platform JSON path")
	)
	flag.Parse()
	if err := run(*n, *m, *load, *utils, *speeds, *periods, *seed, *tasksPath, *machinesPath); err != nil {
		fmt.Fprintln(os.Stderr, "genwork:", err)
		os.Exit(1)
	}
}

func run(n, m int, load float64, utils, speeds, periods string, seed uint64, tasksPath, machinesPath string) error {
	if n <= 0 {
		return fmt.Errorf("-n %d must be positive", n)
	}
	if m <= 0 {
		return fmt.Errorf("-m %d must be positive", m)
	}
	if math.IsNaN(load) || math.IsInf(load, 0) || load <= 0 {
		return fmt.Errorf("-load %v must be a positive finite number", load)
	}
	if tasksPath == "" || machinesPath == "" {
		return fmt.Errorf("-tasks and -machines output paths must be non-empty")
	}
	rng := workload.NewRNG(seed)

	var sf workload.SpeedFamily
	switch speeds {
	case "uniform":
		sf = workload.SpeedsUniform
	case "geometric":
		sf = workload.SpeedsGeometric
	case "big.LITTLE", "biglittle":
		sf = workload.SpeedsBigLittle
	case "identical":
		sf = workload.SpeedsIdentical
	default:
		return fmt.Errorf("unknown speed family %q", speeds)
	}
	plat, err := sf.Platform(rng, m)
	if err != nil {
		return err
	}

	var uf workload.UtilizationFamily
	switch utils {
	case "uunifast":
		uf = workload.UtilUUniFast
	case "bimodal":
		uf = workload.UtilBimodal
	case "exponential":
		uf = workload.UtilExponential
	default:
		return fmt.Errorf("unknown utilization family %q", utils)
	}
	us, err := uf.Utilizations(rng, n, load*plat.TotalSpeed())
	if err != nil {
		return err
	}

	var ps []int64
	switch periods {
	case "loguniform":
		ps = make([]int64, n)
		for i := range ps {
			ps[i], err = workload.LogUniformPeriod(rng, 10, 10000)
			if err != nil {
				return err
			}
		}
	case "divisors":
		ps, err = workload.DivisorGridPeriods(rng, n, 2520)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown period family %q (want loguniform or divisors)", periods)
	}

	ts, err := workload.TasksFromUtilizations(us, ps, 0)
	if err != nil {
		return err
	}

	if err := writeTasks(tasksPath, ts); err != nil {
		return err
	}
	if err := writePlatform(machinesPath, plat); err != nil {
		return err
	}
	fmt.Printf("wrote %d tasks (U=%.4f) to %s and %d machines (Σs=%.4f) to %s\n",
		len(ts), ts.TotalUtilization(), tasksPath, len(plat), plat.TotalSpeed(), machinesPath)
	return nil
}

func writeTasks(path string, ts task.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ts.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writePlatform(path string, p machine.Platform) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
