package partfeas

import "partfeas/internal/dbf"

// ConstrainedTask is a sporadic task whose relative deadline may be
// shorter than its period (C ≤ D ≤ P) — the generalization of the
// paper's implicit-deadline model handled by demand-bound-function
// analysis.
type ConstrainedTask = dbf.Task

// ConstrainedSet is a collection of constrained-deadline tasks.
type ConstrainedSet = dbf.Set

// TestConstrainedEDF runs the first-fit partitioning test with exact
// processor-demand (DBF) admission — EDF on every machine — at speed
// augmentation alpha. approxK > 0 switches to the (1+1/k)-approximate
// demand bound, trading acceptance for speed; approxK <= 0 is exact.
func TestConstrainedEDF(ts ConstrainedSet, p Platform, alpha float64, approxK int) (feasible bool, assignment []int, err error) {
	return dbf.FirstFit(ts, p, alpha, approxK)
}

// TestConstrainedDM runs the first-fit partitioning test with exact
// deadline-monotonic response-time admission — static priorities on
// every machine — at speed augmentation alpha.
func TestConstrainedDM(ts ConstrainedSet, p Platform, alpha float64) (feasible bool, assignment []int, err error) {
	return dbf.FirstFitDM(ts, p, alpha)
}

// FeasibleArbitraryEDF decides exact EDF schedulability of an
// arbitrary-deadline set (D may exceed P) on one machine of the given
// speed, via processor-demand analysis over the synchronous busy period.
func FeasibleArbitraryEDF(ts ConstrainedSet, speed float64) (bool, error) {
	return dbf.FeasibleEDFArbitrary(ts, speed)
}

// FeasibleArbitraryDM decides exact deadline-monotonic schedulability of
// an arbitrary-deadline set on one machine, via Lehoczky level-i
// busy-period analysis.
func FeasibleArbitraryDM(ts ConstrainedSet, speed float64) (bool, error) {
	return dbf.FeasibleDMArbitrary(ts, speed)
}

// AssignOPA runs Audsley's optimal priority assignment for an
// arbitrary-deadline set on one machine of the given speed, returning the
// priority order (order[0] = highest). ok=false is a definitive verdict:
// no fixed-priority assignment works.
func AssignOPA(ts ConstrainedSet, speed float64) (order []int, ok bool, err error) {
	return dbf.AssignOPA(ts, speed)
}
