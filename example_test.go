package partfeas_test

import (
	"fmt"
	"log"

	"partfeas"
)

// The basic call: run the paper's first-fit test and read the verdict.
func ExampleTest() {
	tasks := partfeas.TaskSet{
		{Name: "audio", WCET: 1, Period: 4},
		{Name: "video", WCET: 9, Period: 30},
		{Name: "net", WCET: 3, Period: 10},
	}
	platform := partfeas.NewPlatform(1, 2)

	report, err := partfeas.Test(tasks, platform, partfeas.EDF, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted:", report.Accepted)
	// Output:
	// accepted: true
}

// Running at a theorem's proved augmentation factor turns rejection into
// a certificate about the adversary.
func ExampleTestTheorem() {
	// Three tasks of utilization 0.9 cannot fit two unit machines even
	// with migration, so every theorem-grade test rejects.
	tasks := partfeas.TaskSet{
		{Name: "a", WCET: 9, Period: 10},
		{Name: "b", WCET: 9, Period: 10},
		{Name: "c", WCET: 9, Period: 10},
	}
	platform := partfeas.NewPlatform(0.3, 0.3)

	for _, thm := range partfeas.Theorems {
		rep, err := partfeas.TestTheorem(tasks, platform, thm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("theorem %v (α=%.3f): accepted=%v\n", thm, thm.Alpha(), rep.Accepted)
	}
	// Output:
	// theorem I.1 (α=2.000): accepted=false
	// theorem I.2 (α=2.414): accepted=false
	// theorem I.3 (α=2.980): accepted=false
	// theorem I.4 (α=3.340): accepted=false
}

// The two adversary strengths: σ_part (best partition) and σ_LP (best
// migrating/fluid scheduler). Their gap is what partitioning gives up.
func ExamplePartitionedMinScaling() {
	tasks := partfeas.TaskSet{
		{Name: "a", WCET: 2, Period: 3},
		{Name: "b", WCET: 2, Period: 3},
		{Name: "c", WCET: 2, Period: 3},
	}
	platform := partfeas.NewPlatform(1, 1)

	part, err := partfeas.PartitionedMinScaling(tasks, platform)
	if err != nil {
		log.Fatal(err)
	}
	lp, err := partfeas.MigratoryMinScaling(tasks, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σ_part = %.4f\n", part)
	fmt.Printf("σ_LP   = %.4f\n", lp)
	// Output:
	// σ_part = 1.3333
	// σ_LP   = 1.0000
}

// An accepted partition replayed in the exact simulator meets every
// deadline over a full hyperperiod.
func ExampleSimulate() {
	tasks := partfeas.TaskSet{
		{Name: "a", WCET: 1, Period: 2},
		{Name: "b", WCET: 1, Period: 3},
		{Name: "c", WCET: 2, Period: 6},
	}
	platform := partfeas.NewPlatform(1, 1)
	rep, err := partfeas.Test(tasks, platform, partfeas.EDF, 1)
	if err != nil || !rep.Accepted {
		log.Fatal("expected acceptance")
	}
	res, err := partfeas.Simulate(tasks, platform, rep.Partition.Assignment, partfeas.PolicyEDF, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs=%d misses=%d\n", res.TotalJobs, res.TotalMisses)
	// Output:
	// jobs=6 misses=0
}

// MigratorySchedule builds the explicit migrating schedule behind the LP
// adversary — here for a set no partition can handle at speed 1.
func ExampleMigratorySchedule() {
	tasks := partfeas.TaskSet{
		{Name: "a", WCET: 2, Period: 3},
		{Name: "b", WCET: 2, Period: 3},
		{Name: "c", WCET: 2, Period: 3},
	}
	platform := partfeas.NewPlatform(1, 1)

	sched, ok, err := partfeas.MigratorySchedule(tasks, platform)
	if err != nil || !ok {
		log.Fatal(err)
	}
	fmt.Printf("slices per window: %d (duration %.4f)\n", len(sched.Slices), sched.TotalDuration())
	// Output:
	// slices per window: 3 (duration 1.0000)
}
