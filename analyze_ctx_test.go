package partfeas

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"partfeas/internal/pipeline"
	"partfeas/internal/task"
)

// hardAnalysisInstance is large enough that the exact partitioned
// adversary cannot finish within a short deadline or a small node
// budget, forcing the degradation paths.
func hardAnalysisInstance(t testing.TB) (TaskSet, Platform) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	us := make([]float64, 24)
	for i := range us {
		us[i] = 0.28 + rng.Float64()*0.24
	}
	ts, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return ts, NewPlatform(1, 1.07, 1.13, 1.19, 1.23, 1.31)
}

func TestAnalyzeCtxDeadlineDegradesButCompletes(t *testing.T) {
	ts, p := hardAnalysisInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	a, err := AnalyzeCtx(ctx, ts, p, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("deadline should degrade the analysis, not fail it: %v", err)
	}
	if !a.Degraded || a.SigmaPartitionedExact {
		t.Errorf("Degraded=%v Exact=%v, want degraded inexact", a.Degraded, a.SigmaPartitionedExact)
	}
	// The degraded analysis must still be complete and internally
	// consistent: a certified (if loose) partitioned bound, the migratory
	// LP bound, all four theorem reports and both α bisections.
	if a.SigmaPartitioned < a.SigmaMigratory-1e-9 {
		t.Errorf("certified σ_part bound %v below σ_LP %v", a.SigmaPartitioned, a.SigmaMigratory)
	}
	if a.SigmaMigratory <= 0 {
		t.Errorf("σ_LP = %v", a.SigmaMigratory)
	}
	for i, rep := range a.Reports {
		if rep.Alpha != Theorems[i].Alpha() {
			t.Errorf("report %d ran at α=%v, want %v", i, rep.Alpha, Theorems[i].Alpha())
		}
	}
	if a.MinAlphaEDF <= 0 || a.MinAlphaRMS <= 0 {
		t.Errorf("bisections skipped: MinAlphaEDF=%v MinAlphaRMS=%v", a.MinAlphaEDF, a.MinAlphaRMS)
	}
}

func TestAnalyzeCtxBudgetDegrades(t *testing.T) {
	ts, p := hardAnalysisInstance(t)
	a, err := AnalyzeCtx(context.Background(), ts, p, AnalyzeOptions{ExactBudget: 2000})
	if err != nil {
		t.Fatalf("budget exhaustion should degrade, got %v", err)
	}
	if !a.Degraded {
		t.Error("budget-exhausted analysis not marked Degraded")
	}
	if a.SigmaPartitioned <= 0 {
		t.Errorf("degraded σ_part = %v, want positive certified bound", a.SigmaPartitioned)
	}
}

func TestAnalyzeCtxCancelAborts(t *testing.T) {
	ts, p := hardAnalysisInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := AnalyzeCtx(ctx, ts, p, AnalyzeOptions{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled analysis returned nil error")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancel latency %v exceeds 500ms", elapsed)
	}
	if !IsCanceled(err) {
		t.Errorf("IsCanceled(%v) = false", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Errorf("err = %T, want *PipelineError", err)
	}
}

func TestAnalyzeCtxPreCancelled(t *testing.T) {
	ts, p := demoInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeCtx(ctx, ts, p, AnalyzeOptions{}); !IsCanceled(err) {
		t.Errorf("err = %v, want cancellation", err)
	}
}

func TestAnalyzeSmallInstanceUnaffected(t *testing.T) {
	// The zero options on a tiny instance must still solve exactly —
	// degradation machinery must not kick in when nothing is exhausted.
	ts, p := demoInstance()
	a, err := Analyze(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded || !a.SigmaPartitionedExact {
		t.Errorf("tiny instance degraded: %+v", a)
	}
}

func TestPipelineErrorExports(t *testing.T) {
	// The re-exports must interoperate with the internal package so
	// callers can use errors.Is/As without importing internals.
	pe := pipeline.New(pipeline.StageAnalyze, "op", context.Canceled)
	var got *PipelineError
	if !errors.As(pe, &got) {
		t.Error("PipelineError alias does not match pipeline.Error")
	}
	if !IsCanceled(pe) {
		t.Error("IsCanceled false on wrapped context.Canceled")
	}
	if IsCanceled(errors.New("other")) {
		t.Error("IsCanceled true on unrelated error")
	}
	if !errors.Is(pipeline.FromPanic(pipeline.StageSimulate, "op", "boom", nil), ErrPanic) {
		t.Error("ErrPanic re-export does not match panics")
	}
}

func TestPartitionedMinScalingSurfacesBudget(t *testing.T) {
	// The exact adversary's budget exhaustion must be detectable through
	// the public API with errors.Is, no internal imports required. The
	// hard instance exceeds the default node budget, so the strict entry
	// point errors while AnalyzeCtx degrades on the same instance.
	ts, p := hardAnalysisInstance(t)
	_, err := PartitionedMinScaling(ts, p)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want wrapped ErrBudgetExceeded", err)
	}
}
