// ratiostudy: measure how much of the proved approximation factor typical
// instances actually consume — a miniature of experiment E5.
//
// For each random instance it computes the adversary's minimal platform
// scaling σ (exact partitioned optimum via branch-and-bound, migratory LP
// bound in closed form) and the test's minimal accepting augmentation
// α_FF, then reports the distribution of α_FF/σ against the theorem's
// bound.
//
//	go run ./examples/ratiostudy
package main

import (
	"fmt"
	"log"

	"partfeas"
	"partfeas/internal/stats"
	"partfeas/internal/workload"
)

func main() {
	const trials = 200
	rng := workload.NewRNG(42)

	fmt.Printf("%-28s %8s %8s %8s %8s %8s\n", "comparison", "bound", "mean", "p95", "max", "n")
	for _, study := range []struct {
		name string
		thm  partfeas.Theorem
	}{
		{"EDF vs partitioned (I.1)", partfeas.TheoremI1},
		{"RMS vs partitioned (I.2)", partfeas.TheoremI2},
		{"EDF vs migratory LP (I.3)", partfeas.TheoremI3},
		{"RMS vs migratory LP (I.4)", partfeas.TheoremI4},
	} {
		ratios := make([]float64, 0, trials)
		for len(ratios) < trials {
			// Small instances so the exact adversary stays fast.
			n := 4 + rng.Intn(8)
			m := 2 + rng.Intn(3)
			us, err := workload.UUniFast(rng, n, (0.5+rng.Float64()*0.6)*float64(m))
			if err != nil {
				log.Fatal(err)
			}
			tasks, err := workload.TasksFromUtilizations(us, nil, 1000)
			if err != nil {
				log.Fatal(err)
			}
			platform := partfeas.NewPlatform(randomSpeeds(rng, m)...)

			var sigma float64
			if study.thm.Adversary().String() == "partitioned" {
				sigma, err = partfeas.PartitionedMinScaling(tasks, platform)
			} else {
				sigma, err = partfeas.MigratoryMinScaling(tasks, platform)
			}
			if err != nil {
				continue // exact solver budget exceeded: draw again
			}
			sch := study.thm.Scheduler()
			alpha, ok, err := partfeas.MinAlpha(tasks, platform, sch,
				sigma/2, study.thm.Alpha()*sigma*(1+1e-6), sigma*1e-7)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				log.Fatalf("theorem %v violated: no accepting α below bound·σ", study.thm)
			}
			ratios = append(ratios, alpha/sigma)
		}
		sum, err := stats.Summarize(ratios)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.3f %8.3f %8.3f %8.3f %8d\n",
			study.name, study.thm.Alpha(), sum.Mean, sum.P95, sum.Max, sum.Count)
		if sum.Max > study.thm.Alpha() {
			log.Fatalf("measured ratio %v exceeds the proved bound %v — impossible", sum.Max, study.thm.Alpha())
		}
	}
	fmt.Println("\nevery max is below its bound: the theorems hold on these draws,")
	fmt.Println("and typical instances need far less augmentation than worst-case analysis charges.")
}

func randomSpeeds(rng *workload.RNG, m int) []float64 {
	speeds := make([]float64, m)
	for j := range speeds {
		speeds[j] = 0.25 + rng.Float64()*2
	}
	return speeds
}
