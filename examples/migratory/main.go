// migratory: the partitioned/migratory gap, made concrete. Three tasks
// of utilization 2/3 on two unit-speed machines cannot be partitioned
// (any machine with two of them carries 4/3 > 1), yet a migrating
// scheduler handles them at speed 1. This example builds that migrating
// schedule explicitly — LP witness → open-shop decomposition → cyclic
// slice table — and verifies it meets every deadline.
//
//	go run ./examples/migratory
package main

import (
	"fmt"
	"log"
	"strings"

	"partfeas"
	"partfeas/internal/fractional"
	"partfeas/internal/openshop"
	"partfeas/internal/task"
)

func main() {
	tasks := task.Set{
		{Name: "A", WCET: 2, Period: 3},
		{Name: "B", WCET: 2, Period: 3},
		{Name: "C", WCET: 2, Period: 3},
	}
	platform := partfeas.NewPlatform(1, 1)
	fmt.Printf("tasks: %v (utilization 2 on total speed 2)\n\n", tasks)

	// No partition exists at speed 1 — σ_part = 4/3.
	sigmaPart, err := partfeas.PartitionedMinScaling(tasks, platform)
	if err != nil {
		log.Fatal(err)
	}
	sigmaLP, err := partfeas.MigratoryMinScaling(tasks, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned adversary needs σ_part = %.4f (no partition at speed 1)\n", sigmaPart)
	fmt.Printf("migratory adversary needs σ_LP   = %.4f (exactly feasible at speed 1)\n\n", sigmaLP)

	rep, err := partfeas.Test(tasks, platform, partfeas.EDF, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FF-EDF at α=1: accepted=%v (correctly rejects — it must partition)\n", rep.Accepted)
	rep, err = partfeas.TestTheorem(tasks, platform, partfeas.TheoremI1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FF-EDF at α=2 (Theorem I.1): accepted=%v (a partition exists once α ≥ σ_part = 4/3)\n\n", rep.Accepted)

	// Build the migrating schedule the partitioned test cannot express.
	ok, u, err := fractional.SolveLP(tasks, platform)
	if err != nil || !ok {
		log.Fatalf("LP: %v (%v)", ok, err)
	}
	sched, err := openshop.FromLP(u, platform, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	if err := openshop.VerifyDeadlines(sched, tasks, platform, 1e-6); err != nil {
		log.Fatal(err)
	}

	fmt.Println("cyclic migrating schedule (repeated every time unit):")
	offset := 0.0
	for _, sl := range sched.Slices {
		var cells []string
		for j, i := range sl.Assign {
			name := "idle"
			if i >= 0 {
				name = tasks[i].Name
			}
			cells = append(cells, fmt.Sprintf("m%d:%s", j, name))
		}
		fmt.Printf("  [%.4f, %.4f)  %s\n", offset, offset+sl.Duration, strings.Join(cells, "  "))
		offset += sl.Duration
	}
	work := sched.WorkPerWindow(platform.Speeds())
	fmt.Println("\nwork per unit window (need 2/3 ≈ 0.6667 each):")
	for i, w := range work {
		fmt.Printf("  task %s: %.6f\n", tasks[i].Name, w)
	}
	fmt.Println("\nevery job of every task accrues exactly C_i by its deadline: the")
	fmt.Println("migratory adversary is constructive, not just an LP lower bound.")
}
