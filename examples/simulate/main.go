// simulate: watch the schedulers work. Runs the same task set under EDF
// and RM on one machine at decreasing speeds, showing exactly where each
// policy starts missing deadlines — EDF survives down to speed =
// utilization (its bound is exact), RM gives up earlier (Liu–Layland is
// only sufficient, and RM is not optimal).
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	"partfeas/internal/rational"
	"partfeas/internal/sched"
	"partfeas/internal/sim"
	"partfeas/internal/task"
)

func main() {
	// The classic pair plus background work: U = 2/5 + 4/7 = 0.971…
	tasks := task.Set{
		{Name: "fast", WCET: 2, Period: 5},
		{Name: "slow", WCET: 4, Period: 7},
	}
	exactU, err := tasks.TotalUtilizationRat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task set: %v, utilization %v ≈ %.4f\n\n", tasks, exactU, exactU.Float64())

	hp, err := tasks.Hyperperiod()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s  %-22s  %-22s\n", "speed", "EDF (misses/jobs)", "RM (misses/jobs)")
	for _, speed := range []rational.Rat{
		rational.FromInt(2),
		rational.One(),
		rational.MustNew(34, 35), // exactly U: EDF's last feasible speed
		rational.MustNew(33, 35), // just below U: even EDF must miss
	} {
		line := fmt.Sprintf("%-8s", speed.String())
		for _, policy := range []sim.Policy{sim.PolicyEDF, sim.PolicyRM} {
			res, err := sim.SimulateMachine(tasks, speed, policy, nil, 10*hp)
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf("  %-22s", fmt.Sprintf("%d/%d", len(res.Misses), res.JobsReleased))
		}
		fmt.Println(line)
	}

	// Cross-check with analysis: exact response times at speed 1.
	fmt.Println("\nresponse-time analysis at speed 1 (RM priorities):")
	rts, err := sched.ResponseTimes(tasks, 1)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rts {
		status := "meets deadline"
		if r > float64(tasks[i].Period) {
			status = "EXCEEDS deadline"
		}
		fmt.Printf("  %-6s R=%v (P=%d): %s\n", tasks[i].Name, r, tasks[i].Period, status)
	}

	// Show a few events of the RM miss at speed 1: the slow task's first
	// job cannot finish by time 7.
	fmt.Println("\nfirst RM misses at speed 1:")
	res, err := sim.SimulateMachine(tasks, rational.One(), sim.PolicyRM, nil, 3*hp)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range res.Misses {
		if i >= 3 {
			fmt.Printf("  … and %d more\n", len(res.Misses)-3)
			break
		}
		fmt.Printf("  %v\n", m)
	}
}
