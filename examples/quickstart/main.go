// Quickstart: run the paper's four feasibility tests on a small embedded
// workload and inspect the witness partition.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"partfeas"
)

func main() {
	// A small mixed-criticality workload: WCET and period in the same
	// integer time unit (say, milliseconds). Utilization w = C/P.
	tasks := partfeas.TaskSet{
		{Name: "video-decode", WCET: 9, Period: 30},  // w ≈ 0.30
		{Name: "audio", WCET: 1, Period: 4},          // w = 0.25
		{Name: "network", WCET: 3, Period: 10},       // w = 0.30
		{Name: "ui", WCET: 2, Period: 12},            // w ≈ 0.17
		{Name: "sensor-fusion", WCET: 7, Period: 20}, // w = 0.35
		{Name: "logging", WCET: 1, Period: 50},       // w = 0.02
	}
	// A heterogeneous platform: two little cores and one big core.
	platform := partfeas.NewPlatform(1, 1, 4)

	fmt.Printf("tasks: total utilization %.3f on total speed %.3f\n\n",
		tasks.TotalUtilization(), platform.TotalSpeed())

	// The basic call: the paper's first-fit test with EDF on each
	// machine, no speed augmentation.
	report, err := partfeas.Test(tasks, platform, partfeas.EDF, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	if report.Accepted {
		fmt.Println("FF-EDF accepts at α=1; witness partition:")
		for j := range platform {
			fmt.Printf("  %s (speed %g): load %.3f —",
				platform[j].Name, platform[j].Speed, report.Partition.Loads[j])
			for i, mj := range report.Partition.Assignment {
				if mj == j {
					fmt.Printf(" %s", tasks[i].Name)
				}
			}
			fmt.Println()
		}
	} else {
		fmt.Printf("FF-EDF rejects at α=1 (failing task %v)\n",
			tasks[report.Partition.FailedTask])
	}

	// The theorem-grade calls: run at each proved augmentation factor. A
	// rejection here is a *certificate* that the theorem's adversary
	// (optimal partitioned scheduler for I.1/I.2, migrating fractional
	// scheduler for I.3/I.4) cannot schedule the set at original speeds.
	fmt.Println("\ntheorem-grade tests:")
	for _, thm := range partfeas.Theorems {
		rep, err := partfeas.TestTheorem(tasks, platform, thm)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "reject (adversary infeasible at speed 1)"
		if rep.Accepted {
			verdict = "accept"
		}
		fmt.Printf("  theorem %v: %v vs %v at α=%.3f → %s\n",
			thm, thm.Scheduler(), thm.Adversary(), thm.Alpha(), verdict)
	}

	// Validate the accepted partition end to end: replay one hyperperiod
	// of synchronous periodic releases in the exact simulator.
	sim, err := partfeas.Simulate(tasks, platform, report.Partition.Assignment, partfeas.PolicyEDF, 1.0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation over one hyperperiod: %d jobs, %d deadline misses\n",
		sim.TotalJobs, sim.TotalMisses)
}
