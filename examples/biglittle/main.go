// big.LITTLE: the scenario the paper's introduction motivates — a chip
// with a few fast cores and many slow, power-efficient ones. This example
// sizes the speed augmentation needed as load grows, and shows where the
// feasibility test starts relying on the big cores.
//
//	go run ./examples/biglittle
package main

import (
	"fmt"
	"log"

	"partfeas"
	"partfeas/internal/workload"
)

func main() {
	// 2 big cores (speed 4) + 6 little cores (speed 1): total speed 14.
	platform := partfeas.NewPlatform(4, 4, 1, 1, 1, 1, 1, 1)
	fmt.Printf("platform: 2 big (s=4) + 6 little (s=1), total speed %.0f\n\n", platform.TotalSpeed())

	rng := workload.NewRNG(2016)

	fmt.Println("load sweep (24 UUniFast tasks, averages over 50 draws):")
	fmt.Printf("%8s  %12s  %12s  %12s\n", "U/Σs", "FF-EDF@1", "min α (EDF)", "σ_LP")
	for _, load := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		const draws = 50
		accepted := 0
		var sumAlpha, sumSigma float64
		for d := 0; d < draws; d++ {
			us, err := workload.UUniFast(rng, 24, load*platform.TotalSpeed())
			if err != nil {
				log.Fatal(err)
			}
			tasks, err := workload.TasksFromUtilizations(us, nil, 1000)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := partfeas.Test(tasks, platform, partfeas.EDF, 1)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Accepted {
				accepted++
			}
			sigma, err := partfeas.MigratoryMinScaling(tasks, platform)
			if err != nil {
				log.Fatal(err)
			}
			alpha, ok, err := partfeas.MinAlpha(tasks, platform, partfeas.EDF,
				sigma/2, 2.98*sigma*(1+1e-6), 1e-6)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				log.Fatalf("no accepting α below the theorem ceiling — should be impossible")
			}
			sumAlpha += alpha
			sumSigma += sigma
		}
		fmt.Printf("%8.2f  %11.0f%%  %12.4f  %12.4f\n",
			load, 100*float64(accepted)/draws, sumAlpha/draws, sumSigma/draws)
	}

	// One concrete heavy workload: tasks too big for little cores must
	// land on the big cluster.
	fmt.Println("\nconcrete heavy mix (tasks with w > 1 cannot run on a little core):")
	tasks := partfeas.TaskSet{
		{Name: "vision-pipeline", WCET: 33, Period: 10}, // w = 3.3: big core only
		{Name: "planner", WCET: 24, Period: 20},         // w = 1.2: big core only
		{Name: "control-loop", WCET: 3, Period: 4},      // w = 0.75
		{Name: "telemetry", WCET: 1, Period: 2},         // w = 0.5
		{Name: "health-monitor", WCET: 1, Period: 5},    // w = 0.2
		{Name: "radio", WCET: 2, Period: 8},             // w = 0.25
		{Name: "storage-flush", WCET: 3, Period: 25},    // w = 0.12
		{Name: "watchdog", WCET: 1, Period: 50},         // w = 0.02
	}
	rep, err := partfeas.Test(tasks, platform, partfeas.EDF, 1)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Accepted {
		log.Fatalf("expected acceptance; failing task %v", tasks[rep.Partition.FailedTask])
	}
	for j := range platform {
		kind := "little"
		if platform[j].Speed == 4 {
			kind = "BIG"
		}
		fmt.Printf("  %s %-6s load %.2f/%.0f:", platform[j].Name, kind, rep.Partition.Loads[j], platform[j].Speed)
		for i, mj := range rep.Partition.Assignment {
			if mj == j {
				fmt.Printf(" %s", tasks[i].Name)
			}
		}
		fmt.Println()
	}

	sim, err := partfeas.Simulate(tasks, platform, rep.Partition.Assignment, partfeas.PolicyEDF, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhyperperiod simulation: %d jobs, %d misses\n", sim.TotalJobs, sim.TotalMisses)
}
