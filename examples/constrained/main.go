// constrained: beyond the paper's implicit-deadline model. When deadlines
// are shorter than periods (D < P), utilization is no longer the right
// yardstick — the demand bound function is. This example shows a control
// workload where the simple density test wastes a machine, the exact
// DBF-admission first-fit packs it, and tightening deadlines flips
// feasibility while utilization stays constant.
//
//	go run ./examples/constrained
package main

import (
	"fmt"
	"log"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/rational"
)

func main() {
	platform := machine.New(1, 1)

	// A control-loop workload: short-deadline control pulses plus bulkier
	// background work. Utilization is modest (≈1.17 across two unit
	// machines) but the 10-of-40 deadlines concentrate demand.
	tasks := dbf.Set{
		{Name: "ctrlA", WCET: 8, Deadline: 10, Period: 40},
		{Name: "ctrlB", WCET: 8, Deadline: 10, Period: 40},
		{Name: "plan", WCET: 12, Deadline: 30, Period: 60},
		{Name: "log", WCET: 10, Deadline: 50, Period: 50},
		{Name: "io", WCET: 14, Deadline: 40, Period: 40},
	}
	fmt.Printf("tasks: U = %.3f, density Δ = %.3f, on 2 unit machines\n\n",
		tasks.TotalUtilization(), tasks.TotalDensity())

	for _, tk := range tasks {
		fmt.Printf("  %-6s C=%-3d D=%-3d P=%-3d u=%.3f density=%.3f\n",
			tk.Name, tk.WCET, tk.Deadline, tk.Period, tk.Utilization(), tk.Density())
	}

	fmt.Println("\nfirst-fit partitioning:")
	for _, adm := range []struct {
		name string
		k    int
	}{
		{"exact DBF", 0},
		{"approx DBF (k=1)", 1},
	} {
		ok, asg, err := dbf.FirstFit(tasks, platform, 1, adm.k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s accepted=%v assignment=%v\n", adm.name, ok, asg)
	}

	// Validate the DBF decision empirically on each machine.
	ok, asg, err := dbf.FirstFit(tasks, platform, 1, 0)
	if err != nil || !ok {
		log.Fatalf("exact DBF first-fit should accept: %v (%v)", ok, err)
	}
	for j := range platform {
		var sub dbf.Set
		var names []string
		for i, mj := range asg {
			if mj == j {
				sub = append(sub, tasks[i])
				names = append(names, tasks[i].Name)
			}
		}
		if len(sub) == 0 {
			continue
		}
		misses, jobs, err := dbf.SimulateEDF(sub, rational.One(), 600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  machine %d runs %v: %d jobs simulated, %d misses\n", j, names, jobs, misses)
	}

	// Same WCETs and periods, deadlines halved: utilization unchanged,
	// demand doubled in the tight windows — now nothing fits.
	tight := make(dbf.Set, len(tasks))
	copy(tight, tasks)
	for i := range tight {
		tight[i].Deadline /= 2
		if tight[i].Deadline < tight[i].WCET {
			tight[i].Deadline = tight[i].WCET
		}
	}
	ok, _, err = dbf.FirstFit(tight, platform, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhalved deadlines (same utilization %.3f): accepted=%v\n",
		tight.TotalUtilization(), ok)
	alpha := 1.0
	for !ok && alpha < 4 {
		alpha += 0.25
		ok, _, err = dbf.FirstFit(tight, platform, alpha, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	if ok {
		fmt.Printf("speed augmentation α = %.2f recovers feasibility — the\n", alpha)
		fmt.Println("constrained model needs augmented capacity exactly where dbf(t) peaks.")
	}
}
