module partfeas

go 1.22
