package partfeas

import (
	"math"
	"testing"
)

func demoInstance() (TaskSet, Platform) {
	ts := TaskSet{
		{Name: "video", WCET: 9, Period: 30},
		{Name: "audio", WCET: 1, Period: 4},
		{Name: "net", WCET: 3, Period: 10},
		{Name: "ui", WCET: 2, Period: 12},
		{Name: "sensor", WCET: 1, Period: 20},
	}
	return ts, NewPlatform(1, 1, 4)
}

func TestPublicTestAndTheorems(t *testing.T) {
	ts, p := demoInstance()
	rep, err := Test(ts, p, EDF, 1)
	if err != nil || !rep.Accepted {
		t.Fatalf("Test: %+v (%v)", rep, err)
	}
	for _, thm := range Theorems {
		rep, err := TestTheorem(ts, p, thm)
		if err != nil || !rep.Accepted {
			t.Errorf("theorem %v: %+v (%v)", thm, rep, err)
		}
	}
}

func TestPublicScalings(t *testing.T) {
	ts, p := demoInstance()
	sigmaPart, err := PartitionedMinScaling(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	sigmaLP, err := MigratoryMinScaling(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if sigmaLP > sigmaPart+1e-9 {
		t.Errorf("σ_LP %v > σ_part %v", sigmaLP, sigmaPart)
	}
	if sigmaPart > 1 {
		t.Errorf("demo instance should be partitioned-feasible, σ_part = %v", sigmaPart)
	}
}

func TestPublicSimulate(t *testing.T) {
	ts, p := demoInstance()
	rep, err := Test(ts, p, EDF, 1)
	if err != nil || !rep.Accepted {
		t.Fatal("demo must be accepted")
	}
	res, err := Simulate(ts, p, rep.Partition.Assignment, PolicyEDF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMisses != 0 {
		t.Errorf("accepted demo missed %d deadlines", res.TotalMisses)
	}
	if res.TotalJobs == 0 {
		t.Error("no jobs simulated")
	}
}

func TestAnalyze(t *testing.T) {
	ts, p := demoInstance()
	a, err := Analyze(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SigmaPartitionedExact {
		t.Error("tiny instance should solve exactly")
	}
	if a.SigmaMigratory > a.SigmaPartitioned+1e-9 {
		t.Errorf("σ_LP %v > σ_part %v", a.SigmaMigratory, a.SigmaPartitioned)
	}
	for i, thm := range Theorems {
		if !a.Reports[i].Accepted {
			t.Errorf("theorem %v rejected feasible demo", thm)
		}
	}
	if a.MinAlphaEDF <= 0 || a.MinAlphaRMS <= 0 {
		t.Errorf("min alphas: %v %v", a.MinAlphaEDF, a.MinAlphaRMS)
	}
	// Ratios within the proved bounds.
	if r := a.MinAlphaEDF / a.SigmaPartitioned; r > 2+1e-6 {
		t.Errorf("EDF ratio %v above 2", r)
	}
	if r := a.MinAlphaRMS / a.SigmaPartitioned; r > math.Sqrt2+1+1e-6 {
		t.Errorf("RMS ratio %v above 2.414", r)
	}
}

func TestAnalyzeValidates(t *testing.T) {
	if _, err := Analyze(TaskSet{}, NewPlatform(1)); err == nil {
		t.Error("empty task set should fail")
	}
	ts, _ := demoInstance()
	if _, err := Analyze(ts, Platform{}); err == nil {
		t.Error("empty platform should fail")
	}
}

func TestPublicSensitivity(t *testing.T) {
	ts, p := demoInstance()
	h, err := WCETHeadroom(ts, p, EDF, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range h {
		if v < 1 {
			t.Errorf("headroom[%d] = %v < 1 on an accepted set", i, v)
		}
	}
	c, ok, err := MaxWCET(ts, p, EDF, 1, 0)
	if err != nil || !ok || c < ts[0].WCET {
		t.Errorf("MaxWCET = %d %v (%v)", c, ok, err)
	}
}

func TestPublicMigratorySchedule(t *testing.T) {
	// The canonical unpartitionable instance.
	ts := TaskSet{
		{Name: "A", WCET: 2, Period: 3},
		{Name: "B", WCET: 2, Period: 3},
		{Name: "C", WCET: 2, Period: 3},
	}
	p := NewPlatform(1, 1)
	sched, ok, err := MigratorySchedule(ts, p)
	if err != nil || !ok {
		t.Fatalf("MigratorySchedule: %v (%v)", ok, err)
	}
	if sched.TotalDuration() > 1+1e-9 {
		t.Errorf("duration %v > 1", sched.TotalDuration())
	}
	// Infeasible even for migration.
	over := TaskSet{{WCET: 3, Period: 2}}
	_, ok, err = MigratorySchedule(over, p)
	if err != nil || ok {
		t.Errorf("overloaded instance: ok=%v err=%v", ok, err)
	}
}

func TestPublicConstrained(t *testing.T) {
	set := ConstrainedSet{
		{Name: "a", WCET: 2, Deadline: 4, Period: 10},
		{Name: "b", WCET: 3, Deadline: 6, Period: 12},
	}
	p := NewPlatform(1)
	ok, asg, err := TestConstrainedEDF(set, p, 1, 0)
	if err != nil || !ok || len(asg) != 2 {
		t.Errorf("EDF: %v %v (%v)", ok, asg, err)
	}
	ok, _, err = TestConstrainedDM(set, p, 1)
	if err != nil || !ok {
		t.Errorf("DM: %v (%v)", ok, err)
	}
}

func TestPublicArbitraryDeadlines(t *testing.T) {
	set := ConstrainedSet{{Name: "x", WCET: 3, Deadline: 6, Period: 4}}
	ok, err := FeasibleArbitraryEDF(set, 1)
	if err != nil || !ok {
		t.Errorf("EDF arbitrary: %v (%v)", ok, err)
	}
	ok, err = FeasibleArbitraryDM(set, 1)
	if err != nil || !ok {
		t.Errorf("DM arbitrary: %v (%v)", ok, err)
	}
}
