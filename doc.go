// Package partfeas implements partitioned feasibility tests for
// implicit-deadline sporadic task systems on heterogeneous (uniform /
// related) multiprocessors, reproducing
//
//	Ahuja, Lu, Moseley: "Partitioned Feasibility Tests for Sporadic Tasks
//	on Heterogeneous Machines", IPDPS 2016.
//
// # The problem
//
// A sporadic task τ_i releases jobs at least P_i time units apart; each
// job needs up to C_i units of work and must finish within P_i of its
// release. The platform has m machines with speeds s_1 ≤ … ≤ s_m. A
// partitioned scheduler fixes each task to one machine. Deciding whether
// a partition exists is strongly NP-hard, so practical tests are
// approximate: an α-approximate feasibility test accepts whenever the
// adversary can schedule the task set on machines α× faster, and its
// rejection certifies the adversary fails at the original speeds.
//
// # The algorithm
//
// One greedy pass (the paper's §III): sort tasks by non-increasing
// utilization w_i = C_i/P_i, sort machines by non-decreasing speed, and
// first-fit each task onto the first machine whose single-machine test
// still passes at speed α·s — the exact utilization bound for EDF, the
// Liu–Layland bound for RMS. The Report carries the witness partition or
// the failing task.
//
// # The API
//
// Every feasibility question is asked about an Instance — the task set,
// the platform, and the per-machine scheduler — through context-first
// entry points:
//
//	in := partfeas.Instance{Tasks: ts, Platform: p, Scheduler: partfeas.EDF}
//	rep, err := partfeas.TestCtx(ctx, in, alpha)          // one test
//	a, ok, err := partfeas.MinAlphaCtx(ctx, in, lo, hi, tol) // smallest accepted α
//	res, traces, err := partfeas.SimulateCtx(ctx, in, opts)  // exact DES replay
//
// Instances are validated eagerly at every entry point: NewPlatform
// accepts any speeds by design, so a NaN, zero, or infinite speed is
// rejected here with the offending machine index named, before any
// solver is built. Test and MinAlpha are the context-free conveniences;
// the four pre-redesign Simulate variants (Simulate, SimulateOpts,
// SimulateTraced, SimulateTracedOpts) survive as deprecated wrappers
// over SimulateCtx and remain decision-identical.
//
// Repeated queries on one instance — bisections, sensitivity sweeps,
// admission-control loops — should use a Tester, which precomputes the
// sort orders once and answers repeat queries without allocating;
// Tester.UpdateWCET re-tests a WCET change incrementally. A Tester is
// not safe for concurrent use; internal/service pools them for the HTTP
// server (cmd/serve), whose responses are byte-identical to direct
// library calls. Long-lived admission loops are served by the
// incremental engine in internal/online, built with NewEngine and an
// Options struct whose Policy field selects the placement policy —
// first-fit over the paper's sorted order (the default, byte-identical
// to a fresh solve), or the arrival-order, best-fit, worst-fit and
// k-choices alternatives raced against each other by internal/arena
// and cmd/arena.
//
// Cancellation is cooperative with bounded latency everywhere: an
// expired or cancelled context surfaces as a PipelineError (check with
// IsCanceled), and AnalyzeCtx degrades to certified bounds on deadline
// expiry instead of failing.
//
// # The guarantees
//
// Four theorems, surfaced as TheoremI1 … TheoremI4 with their proved
// augmentation factors:
//
//	I.1  EDF vs partitioned optimum    α = 2
//	I.2  RMS vs partitioned optimum    α = 1/(√2−1) ≈ 2.414
//	I.3  EDF vs migratory (LP) bound   α = 2.98
//	I.4  RMS vs migratory (LP) bound   α = 3.34
//
// Both adversaries are implemented, not assumed: PartitionedMinScaling is
// an exact branch-and-bound and MigratoryMinScaling the closed-form LP
// bound, so the guarantees are checkable on any instance (see the E1–E12
// experiment suite under internal/experiments and EXPERIMENTS.md), and
// Analyze bundles the tests, adversary scalings and minimal-α
// measurement for one instance.
package partfeas
