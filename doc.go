// Package partfeas implements partitioned feasibility tests for
// implicit-deadline sporadic task systems on heterogeneous (uniform /
// related) multiprocessors, reproducing
//
//	Ahuja, Lu, Moseley: "Partitioned Feasibility Tests for Sporadic Tasks
//	on Heterogeneous Machines", IPDPS 2016.
//
// # The problem
//
// A sporadic task τ_i releases jobs at least P_i time units apart; each
// job needs up to C_i units of work and must finish within P_i of its
// release. The platform has m machines with speeds s_1 ≤ … ≤ s_m. A
// partitioned scheduler fixes each task to one machine. Deciding whether
// a partition exists is strongly NP-hard, so practical tests are
// approximate: an α-approximate feasibility test accepts whenever the
// adversary can schedule the task set on machines α× faster, and its
// rejection certifies the adversary fails at the original speeds.
//
// # The algorithm
//
// One greedy pass (the paper's §III): sort tasks by non-increasing
// utilization w_i = C_i/P_i, sort machines by non-decreasing speed, and
// first-fit each task onto the first machine whose single-machine test
// still passes at speed α·s — the exact utilization bound for EDF, the
// Liu–Layland bound for RMS. Test and TestTheorem run it; the Report
// carries the witness partition or the failing task.
//
// # The guarantees
//
// Four theorems, surfaced as TheoremI1 … TheoremI4 with their proved
// augmentation factors:
//
//	I.1  EDF vs partitioned optimum    α = 2
//	I.2  RMS vs partitioned optimum    α = 1/(√2−1) ≈ 2.414
//	I.3  EDF vs migratory (LP) bound   α = 2.98
//	I.4  RMS vs migratory (LP) bound   α = 3.34
//
// Both adversaries are implemented, not assumed: PartitionedMinScaling is
// an exact branch-and-bound and MigratoryMinScaling the closed-form LP
// bound, so the guarantees are checkable on any instance (see the E1–E12
// experiment suite under internal/experiments and EXPERIMENTS.md).
//
// # Beyond the test
//
// Simulate replays a partition in an exact rational-arithmetic
// discrete-event scheduler (synchronous periodic releases over a
// hyperperiod) to observe the accepted schedule actually meeting
// deadlines, and Analyze bundles the tests, adversary scalings and
// minimal-α measurement for one instance.
package partfeas
